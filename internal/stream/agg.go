package stream

import (
	"encoding/json"
	"sort"
	"sync"

	"madave/internal/corpus"
	"madave/internal/crawler"
	"madave/internal/oracle"
	"madave/internal/stats"
	"madave/internal/urlx"
)

// AdRecord is the journaled form of one harvested, classified ad.
type AdRecord struct {
	Hash      string `json:"h"`
	Category  string `json:"c"`
	Network   string `json:"n,omitempty"`
	ChainLen  int    `json:"l"`
	Day       int    `json:"d"`
	Sandboxed bool   `json:"s,omitempty"`
	// Graph carries the flow-graph oracle's slice of the verdict; absent
	// when the graph oracle is off, so graph-off journals are byte-identical
	// to pre-graph ones.
	Graph *AdGraphRecord `json:"g,omitempty"`
}

// AdGraphRecord is the journaled flow-graph verdict of one classified ad —
// the integer projection of flowgraph.Summary that folds exactly across the
// streaming commit path.
type AdGraphRecord struct {
	Flagged bool `json:"f,omitempty"`
	// Chain is the graph-measured arbitration-chain depth (redirect hops).
	Chain int `json:"c,omitempty"`
	// XOrigin / Edges are the cross-origin and total edge counts.
	XOrigin int `json:"x,omitempty"`
	Edges   int `json:"e,omitempty"`
}

// NewAdRecord builds the journal form of one classified ad.
func NewAdRecord(ha crawler.HarvestedAd, inc oracle.Incident) AdRecord {
	rec := AdRecord{
		Hash:      ha.Ad.Hash,
		Category:  string(inc.Category),
		Network:   servingNetwork(ha.Ad),
		ChainLen:  len(ha.Ad.Chain),
		Day:       ha.Ad.Day,
		Sandboxed: ha.Sandboxed,
	}
	if inc.Report != nil && inc.Report.Graph != nil {
		g := inc.Report.Graph
		rec.Graph = &AdGraphRecord{
			Flagged: g.Verdict.Malicious,
			Chain:   g.Features.ChainDepth,
			XOrigin: g.Features.CrossOriginEdges,
			Edges:   g.Features.Edges,
		}
	}
	return rec
}

// servingNetwork mirrors the analysis package's attribution: the last
// arbitration hop served the ad; a chainless ad is attributed to its final
// URL's host.
func servingNetwork(ad *corpus.Ad) string {
	if len(ad.Chain) == 0 {
		return urlx.Host(ad.FinalURL)
	}
	return ad.Chain[len(ad.Chain)-1]
}

// VisitRecord is one journal entry: the complete, classified observation of
// one visit. Records fold commutatively into the Agg, so any interleaving —
// including a replay after a crash — reproduces the same aggregate state.
type VisitRecord struct {
	Seq      int64      `json:"seq"`
	Key      string     `json:"key"`
	ErrCause string     `json:"err,omitempty"`
	Frames   int        `json:"frames"`
	NonAd    int        `json:"nonad"`
	Degraded bool       `json:"degraded,omitempty"`
	Ads      []AdRecord `json:"ads,omitempty"`

	// Aborted marks an outcome cut off mid-flight (drain deadline, panic,
	// wedge). Aborted records keep the pipeline's item accounting complete
	// but are never journaled: the visit stays pending and is re-executed —
	// hermetically, hence identically — on the next run.
	Aborted    bool   `json:"-"`
	AbortCause string `json:"-"`
}

// RecordKind is the journal kind tag of VisitRecord entries;
// CheckpointKind tags compacted aggregate state.
const (
	RecordKind     = "visit"
	CheckpointKind = "checkpoint"
)

// Agg is the streaming aggregate: every study statistic the service reports,
// folded record by record with commutative, integer-exact operations, plus
// the done-set that recovery consults. Memory is flat in stream length —
// bounded by distinct ad hashes, not by visits.
type Agg struct {
	mu   sync.Mutex
	done map[int64]struct{}

	visits, pageErrors, frames, adFrames, nonAd int
	sandboxed, degraded                         int

	errCauses  stats.Counter
	categories stats.Counter
	networks   stats.Counter
	malNets    stats.Counter // serving network → non-clean ad count

	uniqueAds map[string]int // hash → impressions seen
	chain     stats.IntMoments
	chainHist stats.IntHist
	dayAds    stats.IntHist

	// Flow-graph accumulators, folded from AdRecord.Graph. They live beside
	// (never inside) the StreamSummary fields: the canonical summary JSON is
	// byte-identical with the graph oracle on or off.
	graphScanned   int
	graphFlagged   int
	graphXOrigin   int
	graphEdges     int
	graphChainHist stats.IntHist
}

// NewAgg returns an empty aggregate.
func NewAgg() *Agg {
	return &Agg{done: make(map[int64]struct{}), uniqueAds: make(map[string]int)}
}

// Fold merges one record in. It returns false (and changes nothing) when the
// record's sequence number was already folded — replaying a journal that
// holds both a checkpoint and its tail is idempotent.
func (a *Agg) Fold(r VisitRecord) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.done[r.Seq]; dup {
		return false
	}
	a.done[r.Seq] = struct{}{}
	a.visits++
	if r.ErrCause != "" {
		a.pageErrors++
		a.errCauses.Add(r.ErrCause)
	}
	if r.Degraded {
		a.degraded++
	}
	a.frames += r.Frames
	a.nonAd += r.NonAd
	a.adFrames += len(r.Ads)
	for _, ad := range r.Ads {
		if ad.Sandboxed {
			a.sandboxed++
		}
		a.uniqueAds[ad.Hash]++
		a.categories.Add(ad.Category)
		if ad.Network != "" {
			a.networks.Add(ad.Network)
			if ad.Category != string(oracle.CatClean) {
				a.malNets.Add(ad.Network)
			}
		}
		a.chain.Add(ad.ChainLen)
		a.chainHist.Add(ad.ChainLen)
		a.dayAds.Add(ad.Day)
		if g := ad.Graph; g != nil {
			a.graphScanned++
			if g.Flagged {
				a.graphFlagged++
			}
			a.graphXOrigin += g.XOrigin
			a.graphEdges += g.Edges
			a.graphChainHist.Add(g.Chain)
		}
	}
	return true
}

// MalNetworks returns the running per-network malvertising table: for each
// serving ad network, how many non-clean ads it has served so far, sorted by
// count. This is the live view /statusz renders; it never enters the
// canonical StreamSummary artifact.
func (a *Agg) MalNetworks() []stats.KV {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.malNets.Sorted()
}

// Done reports whether seq has been folded.
func (a *Agg) Done(seq int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.done[seq]
	return ok
}

// DoneCount returns how many visits have been folded.
func (a *Agg) DoneCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.done)
}

// StreamSummary is the deterministic study summary: every field derives from
// integer accumulators or sorted views, so its JSON is byte-identical for a
// given set of folded records regardless of fold order, worker scheduling,
// or how many times the process died along the way. Operational counters
// (restarts, sheds, queue depths) live in Ops, never here.
type StreamSummary struct {
	Visits         int        `json:"visits"`
	PageErrors     int        `json:"page_errors"`
	ErrCauses      []stats.KV `json:"err_causes,omitempty"`
	Frames         int        `json:"frames"`
	AdFrames       int        `json:"ad_frames"`
	NonAdFrames    int        `json:"nonad_frames"`
	SandboxedAds   int        `json:"sandboxed_ads"`
	DegradedPages  int        `json:"degraded_pages"`
	UniqueAds      int        `json:"unique_ads"`
	DupImpressions int        `json:"dup_impressions"`
	Categories     []stats.KV `json:"categories,omitempty"`
	Malicious      int        `json:"malicious"`
	Networks       []stats.KV `json:"networks,omitempty"`
	ChainMean      float64    `json:"chain_mean"`
	ChainP50       int        `json:"chain_p50"`
	ChainP90       int        `json:"chain_p90"`
	ChainMax       int        `json:"chain_max"`
	AdsPerDay      []int      `json:"ads_per_day,omitempty"`
}

// JSON renders the summary in its canonical byte form — the artifact the
// kill-recover soak compares across runs.
func (s StreamSummary) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic("stream: summary marshal: " + err.Error()) // fixed struct, cannot fail
	}
	return b
}

// Summary materializes the deterministic summary of everything folded so
// far.
func (a *Agg) Summary() StreamSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := StreamSummary{
		Visits:        a.visits,
		PageErrors:    a.pageErrors,
		ErrCauses:     a.errCauses.Sorted(),
		Frames:        a.frames,
		AdFrames:      a.adFrames,
		NonAdFrames:   a.nonAd,
		SandboxedAds:  a.sandboxed,
		DegradedPages: a.degraded,
		UniqueAds:     len(a.uniqueAds),
		Categories:    a.categories.Sorted(),
		Networks:      a.networks.Sorted(),
		ChainMean:     a.chain.Mean(),
		ChainP50:      a.chainHist.Quantile(0.5),
		ChainP90:      a.chainHist.Quantile(0.9),
		ChainMax:      a.chainHist.Max(),
	}
	for _, n := range a.uniqueAds {
		s.DupImpressions += n - 1
	}
	for _, kv := range s.Categories {
		if kv.Key != string(oracle.CatClean) {
			s.Malicious += kv.Count
		}
	}
	if a.dayAds.Total() > 0 {
		s.AdsPerDay = a.dayAds.Series()
	}
	return s
}

// GraphSummary is the flow-graph oracle's deterministic streaming aggregate.
// It is a separate artifact from StreamSummary — its JSON stands beside the
// canonical summary, never inside it — so enabling the graph oracle leaves
// StreamSummary.JSON byte-identical.
type GraphSummary struct {
	Scanned          int `json:"scanned"`
	Flagged          int `json:"flagged"`
	ChainMax         int `json:"chain_max"`
	ChainP90         int `json:"chain_p90"`
	CrossOriginEdges int `json:"cross_origin_edges"`
	Edges            int `json:"edges"`
}

// JSON renders the graph summary in canonical byte form.
func (s GraphSummary) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic("stream: graph summary marshal: " + err.Error()) // fixed struct, cannot fail
	}
	return b
}

// GraphSummary materializes the flow-graph aggregate folded so far; Scanned
// is 0 when the graph oracle never ran.
func (a *Agg) GraphSummary() GraphSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return GraphSummary{
		Scanned:          a.graphScanned,
		Flagged:          a.graphFlagged,
		ChainMax:         a.graphChainHist.Max(),
		ChainP90:         a.graphChainHist.Quantile(0.9),
		CrossOriginEdges: a.graphXOrigin,
		Edges:            a.graphEdges,
	}
}

// seqRange is an inclusive run of folded sequence numbers; the done-set
// checkpoints as merged ranges (a healthy stream is one range, so the
// checkpoint stays O(gaps), not O(visits)).
type seqRange struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// adCount pairs an ad hash with its impression count for checkpointing.
type adCount struct {
	Hash string `json:"h"`
	N    int    `json:"n"`
}

// kvInt is one histogram bucket in checkpoint form.
type kvInt struct {
	V int `json:"v"`
	N int `json:"n"`
}

// aggState is the checkpoint serialization of an Agg: every map rendered as
// a sorted slice so the payload (and hence its content hash) is canonical.
type aggState struct {
	Done       []seqRange       `json:"done,omitempty"`
	Visits     int              `json:"visits"`
	PageErrors int              `json:"page_errors"`
	Frames     int              `json:"frames"`
	AdFrames   int              `json:"ad_frames"`
	NonAd      int              `json:"nonad"`
	Sandboxed  int              `json:"sandboxed"`
	Degraded   int              `json:"degraded"`
	ErrCauses  []stats.KV       `json:"err_causes,omitempty"`
	Categories []stats.KV       `json:"categories,omitempty"`
	Networks   []stats.KV       `json:"networks,omitempty"`
	MalNets    []stats.KV       `json:"mal_nets,omitempty"`
	UniqueAds  []adCount        `json:"unique_ads,omitempty"`
	Chain      stats.IntMoments `json:"chain"`
	ChainHist  []kvInt          `json:"chain_hist,omitempty"`
	DayAds     []kvInt          `json:"day_ads,omitempty"`
	// Flow-graph accumulators; all omitempty, so graph-off checkpoints are
	// byte-identical to pre-graph ones (and old checkpoints restore cleanly).
	GraphScanned   int     `json:"graph_scanned,omitempty"`
	GraphFlagged   int     `json:"graph_flagged,omitempty"`
	GraphXOrigin   int     `json:"graph_xorigin,omitempty"`
	GraphEdges     int     `json:"graph_edges,omitempty"`
	GraphChainHist []kvInt `json:"graph_chain_hist,omitempty"`
}

// checkpoint snapshots the aggregate in canonical form.
func (a *Agg) checkpoint() aggState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := aggState{
		Visits:     a.visits,
		PageErrors: a.pageErrors,
		Frames:     a.frames,
		AdFrames:   a.adFrames,
		NonAd:      a.nonAd,
		Sandboxed:  a.sandboxed,
		Degraded:   a.degraded,
		ErrCauses:  a.errCauses.Sorted(),
		Categories: a.categories.Sorted(),
		Networks:   a.networks.Sorted(),
		MalNets:    a.malNets.Sorted(),
		Chain:      a.chain,
	}
	seqs := make([]int64, 0, len(a.done))
	for s := range a.done {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		if n := len(st.Done); n > 0 && st.Done[n-1].Hi == s-1 {
			st.Done[n-1].Hi = s
			continue
		}
		st.Done = append(st.Done, seqRange{Lo: s, Hi: s})
	}
	for h, n := range a.uniqueAds {
		st.UniqueAds = append(st.UniqueAds, adCount{Hash: h, N: n})
	}
	sort.Slice(st.UniqueAds, func(i, j int) bool { return st.UniqueAds[i].Hash < st.UniqueAds[j].Hash })
	st.ChainHist = histBuckets(&a.chainHist)
	st.DayAds = histBuckets(&a.dayAds)
	st.GraphScanned = a.graphScanned
	st.GraphFlagged = a.graphFlagged
	st.GraphXOrigin = a.graphXOrigin
	st.GraphEdges = a.graphEdges
	st.GraphChainHist = histBuckets(&a.graphChainHist)
	return st
}

func histBuckets(h *stats.IntHist) []kvInt {
	if h.Total() == 0 {
		return nil
	}
	var out []kvInt
	for v, n := range h.Series() { // Series is value-indexed: canonical order
		if n > 0 {
			out = append(out, kvInt{V: v, N: n})
		}
	}
	return out
}

// restore replaces the aggregate with a checkpoint's state.
func (a *Agg) restore(st aggState) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done = make(map[int64]struct{})
	for _, r := range st.Done {
		for s := r.Lo; s <= r.Hi; s++ {
			a.done[s] = struct{}{}
		}
	}
	a.visits = st.Visits
	a.pageErrors = st.PageErrors
	a.frames = st.Frames
	a.adFrames = st.AdFrames
	a.nonAd = st.NonAd
	a.sandboxed = st.Sandboxed
	a.degraded = st.Degraded
	a.errCauses = stats.Counter{}
	for _, kv := range st.ErrCauses {
		a.errCauses.AddN(kv.Key, kv.Count)
	}
	a.categories = stats.Counter{}
	for _, kv := range st.Categories {
		a.categories.AddN(kv.Key, kv.Count)
	}
	a.networks = stats.Counter{}
	for _, kv := range st.Networks {
		a.networks.AddN(kv.Key, kv.Count)
	}
	a.malNets = stats.Counter{}
	for _, kv := range st.MalNets {
		a.malNets.AddN(kv.Key, kv.Count)
	}
	a.uniqueAds = make(map[string]int, len(st.UniqueAds))
	for _, ac := range st.UniqueAds {
		a.uniqueAds[ac.Hash] = ac.N
	}
	a.chain = st.Chain
	a.chainHist = stats.IntHist{}
	for _, b := range st.ChainHist {
		a.chainHist.AddN(b.V, b.N)
	}
	a.dayAds = stats.IntHist{}
	for _, b := range st.DayAds {
		a.dayAds.AddN(b.V, b.N)
	}
	a.graphScanned = st.GraphScanned
	a.graphFlagged = st.GraphFlagged
	a.graphXOrigin = st.GraphXOrigin
	a.graphEdges = st.GraphEdges
	a.graphChainHist = stats.IntHist{}
	for _, b := range st.GraphChainHist {
		a.graphChainHist.AddN(b.V, b.N)
	}
}
