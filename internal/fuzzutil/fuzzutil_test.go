package fuzzutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDeterminism(t *testing.T) {
	if got, want := Hosts(7, 50), Hosts(7, 50); !equal(got, want) {
		t.Fatal("Hosts not deterministic for a fixed seed")
	}
	if got, want := URLs(7, 50), URLs(7, 50); !equal(got, want) {
		t.Fatal("URLs not deterministic for a fixed seed")
	}
	if got, want := Pages(7, 50), Pages(7, 50); !equal(got, want) {
		t.Fatal("Pages not deterministic for a fixed seed")
	}
	if got, want := Scripts(7, 50), Scripts(7, 50); !equal(got, want) {
		t.Fatal("Scripts not deterministic for a fixed seed")
	}
	if equal(Hosts(7, 50), Hosts(8, 50)) {
		t.Fatal("different seeds produced identical host corpora")
	}
}

func TestCorpusShapes(t *testing.T) {
	hosts := Hosts(1, 500)
	shapes := map[string]bool{}
	for _, h := range hosts {
		for _, c := range h {
			switch c {
			case ':':
				shapes["port"] = true
			case '[':
				shapes["bracket"] = true
			case 'A':
				shapes["upper"] = true
			}
		}
	}
	for _, want := range []string{"port", "bracket", "upper"} {
		if !shapes[want] {
			t.Errorf("host corpus never produced a %s variant", want)
		}
	}
}

func TestLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	if got := LoadCorpus(t, filepath.Join(dir, "absent")); got != nil {
		t.Fatalf("missing dir should load as nil, got %d entries", len(got))
	}
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte("alpha"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.txt"), []byte("beta"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := LoadCorpus(t, dir)
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("LoadCorpus = %q", got)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
