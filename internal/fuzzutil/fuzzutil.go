// Package fuzzutil holds the shared helpers behind the repo's fuzzing and
// invariant-oracle harness (DESIGN.md §12): seeding fuzz corpora, loading
// checked-in corpus files, and synthesizing deterministic host/URL/HTML/JS
// corpora for differential tests. It deliberately imports nothing from the
// rest of the repo so that any package's in-package tests can use it without
// creating an import cycle.
package fuzzutil

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// SeedStrings adds each seed string to the fuzz target's seed corpus.
func SeedStrings(f *testing.F, seeds ...string) {
	f.Helper()
	for _, s := range seeds {
		f.Add(s)
	}
}

// LoadCorpus returns the contents of every regular file directly under dir,
// sorted by file name (ReadDir order). Missing directories are not an error:
// they return nil so targets can run before a corpus has been committed.
func LoadCorpus(tb testing.TB, dir string) []string {
	tb.Helper()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		tb.Fatalf("fuzzutil: reading corpus dir %s: %v", dir, err)
	}
	var out []string
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatalf("fuzzutil: reading corpus file %s: %v", e.Name(), err)
		}
		out = append(out, string(b))
	}
	return out
}

// RNG is a splitmix64 generator: tiny, deterministic, and independent of
// math/rand so corpus synthesis is byte-stable across Go releases.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 pseudo-random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Pick returns a uniformly chosen element of list.
func (r *RNG) Pick(list []string) string { return list[r.Intn(len(list))] }

var hostLabels = []string{
	"www", "ads", "ad", "cdn", "static", "track", "click", "bid", "x",
	"news", "mail", "img1", "a-b", "xn--p1ai", "very-long-label-name",
}

var hostSuffixes = []string{
	"com", "net", "org", "info", "co.uk", "org.uk", "com.au", "co.jp",
	"de", "ru", "cn", "tv", "xxx", "uk", "jp",
}

// hostDecorations are the adversarial shapes the urlx laws must survive:
// ports, trailing dots, empty labels, case, brackets, spaces.
var hostDecorations = []string{
	"", "", "", "", ":80", ":8080", ".", "..", ":", " ",
}

// Hosts returns n deterministic host names spanning the shapes the
// measurement pipeline sees, from clean registrable domains to hostile junk.
func Hosts(seed uint64, n int) []string {
	rng := NewRNG(seed)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		h := rng.Pick(hostSuffixes)
		for d := rng.Intn(4); d > 0; d-- {
			h = rng.Pick(hostLabels) + "." + h
		}
		switch rng.Intn(8) {
		case 0:
			h = upperASCII(h)
		case 1:
			h = "[" + h + "]"
		case 2:
			h = h + rng.Pick(hostDecorations)
		case 3:
			// Inject an empty label.
			h = rng.Pick(hostLabels) + ".." + h
		}
		out = append(out, h)
	}
	return out
}

var urlSchemes = []string{"http://", "https://", "", "//", "ftp://", "javascript:"}
var urlPaths = []string{
	"", "/", "/ads/slot1", "/a/b/../c", "/%2e%2e/", "/pay load", "/ad.js",
	"/redirect?u=http://evil.example/land", "/x?a=1&b=%20c#frag", "/?q=é",
}

// URLs returns n deterministic URL strings — absolute, scheme-relative,
// relative, and junk — for the urlx differential tests and fuzz seeds.
func URLs(seed uint64, n int) []string {
	rng := NewRNG(seed)
	hosts := Hosts(seed^0xabcdef, n)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		u := rng.Pick(urlSchemes) + hosts[i] + rng.Pick(urlPaths)
		if rng.Intn(16) == 0 {
			u = "%zz" + u // undecodable percent escape
		}
		out = append(out, u)
	}
	return out
}

var pageSnippets = []string{
	`<p class="x">hi</p>`,
	`<iframe src=http://ads.example.com/slot1 width=300></iframe>`,
	`<script>var s = "</scripty>" + '<div>';</script>`,
	`<!-->trailing text`,
	`<!--->more text`,
	`<!-- normal comment --><div>after</div>`,
	`<img src=/banner.png alt='a b'>`,
	`<a href="/x?a=1&amp;b=2">&lt;link&gt;</a>`,
	`<br/><div/>text`,
	`<!DOCTYPE html>`,
	`<textarea><b>not markup</b></textarea>`,
	`<em `, `</`, `<`, `<1tag>`, `&#x41;&#66;&bogus;&amp`,
	`<div data-x = unquoted/value till-gt>`,
	`<title>t</title`,
}

// Pages returns n deterministic small HTML documents assembled from
// tokenizer-corner snippets, for the htmlparse fuzz seed corpus and
// round-trip tests.
func Pages(seed uint64, n int) []string {
	rng := NewRNG(seed)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var page string
		for k := 1 + rng.Intn(6); k > 0; k-- {
			page += rng.Pick(pageSnippets)
		}
		out = append(out, page)
	}
	return out
}

var scriptSnippets = []string{
	`var a = 1 + 2 * 3;`,
	`function f(x) { return x ? f(x - 1) : 0; } f(3);`,
	`var s = unescape("a+b%20c%41"); s.length;`,
	`var u = encodeURIComponent(" /?&é");`,
	`for (var i = 0; i < 4; i++) { var t = i.toString(16); }`,
	`var o = {k: [1, 2, "x"]}; for (var p in o) { o[p]; }`,
	`try { null.x; } catch (e) { e + ""; }`,
	`eval("1+1");`,
	`var n = parseInt("0x1f") + parseFloat("1e3");`,
	`"abc".substring(1, 9) + "q".charCodeAt(0);`,
	`while (true) { break; }`,
	`switch (2) { case 1: ; break; default: ; }`,
}

// Scripts returns n deterministic minijs programs for the lexer/parser/eval
// fuzz seed corpora.
func Scripts(seed uint64, n int) []string {
	rng := NewRNG(seed)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var src string
		for k := 1 + rng.Intn(4); k > 0; k-- {
			src += rng.Pick(scriptSnippets) + "\n"
		}
		out = append(out, src)
	}
	return out
}

func upperASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// Diff formats a labelled got/want pair for failure messages, keeping the
// reporting style of the repo's differential tests uniform.
func Diff(label string, got, want any) string {
	return fmt.Sprintf("%s divergence:\n  got  = %#v\n  want = %#v", label, got, want)
}
