// Package leakcheck is the shared goroutine-leak oracle for the repo's soak
// and integration tests: snapshot the goroutine count before the scenario,
// then require the runtime to wind back down to (near) that baseline after
// it. Like fuzzutil, it imports nothing from the rest of the repo so any
// package's tests can use it without import cycles.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// DefaultSlack is how many goroutines above the baseline still count as
// clean: the runtime keeps a couple of service goroutines (GC workers, timer
// scavenger) alive on its own schedule.
const DefaultSlack = 2

// DefaultDeadline bounds how long Check waits for workers to retire.
const DefaultDeadline = 5 * time.Second

// Snapshot is a goroutine-count baseline taken before the scenario runs.
type Snapshot struct {
	before   int
	slack    int
	deadline time.Duration
}

// Before records the current goroutine count with default slack and
// deadline. Take it before starting the workload under test.
func Before() Snapshot {
	return Snapshot{before: runtime.NumGoroutine(), slack: DefaultSlack, deadline: DefaultDeadline}
}

// WithSlack returns a copy allowing n goroutines above the baseline.
func (s Snapshot) WithSlack(n int) Snapshot { s.slack = n; return s }

// WithDeadline returns a copy that waits at most d for wind-down.
func (s Snapshot) WithDeadline(d time.Duration) Snapshot { s.deadline = d; return s }

// Check requires the goroutine count to return to the baseline (plus slack)
// before the deadline, retrying with GC pauses in between — worker
// goroutines are allowed a moment to retire, but a true leak fails the test
// with a full stack dump of everything still running.
func (s Snapshot) Check(tb testing.TB) {
	tb.Helper()
	deadline := time.Now().Add(s.deadline)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= s.before+s.slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			tb.Fatalf("goroutine leak: %d -> %d\n%s", s.before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
