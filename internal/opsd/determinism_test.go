package opsd

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"madave/internal/journal"
	"madave/internal/telemetry"
)

// TestOpsObserveOnly is the ops plane's hard invariant: the same seed must
// produce byte-identical final statistics whether the admin server, the event
// log, the collector, and a client hammering every endpoint mid-run are all on
// — or all off. The ops plane observes; it never steers.
func TestOpsObserveOnly(t *testing.T) {
	const seed = 47

	// Leg A: plain run, no ops plane, no event log.
	plain := func() string {
		tel := telemetry.New(seed)
		svc := newTestService(t, seed, tel, journal.NewMem(), nil)
		res, err := svc.Run(context.Background())
		if err != nil {
			t.Fatalf("plain run: %v", err)
		}
		return string(res.Summary.JSON())
	}()

	// Leg B: event log attached, admin server up with a fast collector, and a
	// goroutine hitting every endpoint for the whole run.
	observed := func() string {
		tel := telemetry.New(seed)
		tel.Events = telemetry.NewEventLog(0)
		s, err := Start(Config{Addr: "127.0.0.1:0", Tel: tel, Interval: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		svc := newTestService(t, seed, tel, journal.NewMem(), nil)
		s.AttachService(svc)

		client := &http.Client{}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/metrics", "/healthz", "/readyz", "/statusz", "/alerts", "/events?n=50"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get("http://" + s.Addr() + paths[i%len(paths)])
				if err == nil {
					resp.Body.Close()
				}
			}
		}()

		res, err := svc.Run(context.Background())
		close(stop)
		wg.Wait()
		client.CloseIdleConnections()
		if err != nil {
			t.Fatalf("observed run: %v", err)
		}
		return string(res.Summary.JSON())
	}()

	if plain != observed {
		t.Fatalf("ops plane perturbed the run\nplain:    %s\nobserved: %s", plain, observed)
	}
}
