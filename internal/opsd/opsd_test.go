package opsd

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"madave/internal/core"
	"madave/internal/fuzzutil/leakcheck"
	"madave/internal/journal"
	"madave/internal/memnet"
	"madave/internal/resilient"
	"madave/internal/stream"
	"madave/internal/telemetry"
)

// testStudyConfig mirrors the stream package's unit-scale chaos study.
func testStudyConfig(seed uint64, tel *telemetry.Set) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.CrawlSites = 20
	cfg.Crawl.Days = 1
	cfg.Crawl.Refreshes = 2
	cfg.Crawl.Parallelism = 4
	cfg.Crawl.VisitTimeout = -1
	cfg.Crawl.Retry = resilient.Policy{
		MaxAttempts:    3,
		BaseDelay:      time.Microsecond,
		MaxDelay:       20 * time.Microsecond,
		AttemptTimeout: 250 * time.Millisecond,
	}
	cfg.AnalysisRetry = cfg.Crawl.Retry
	cfg.OracleParallelism = 4
	prof := memnet.UniformProfile(0.2)
	cfg.Chaos = &prof
	cfg.Telemetry = tel
	return cfg
}

func newTestService(t *testing.T, seed uint64, tel *telemetry.Set, j journal.Backend,
	mut func(*stream.ServiceConfig)) *stream.Service {
	t.Helper()
	study, err := core.NewStudy(testStudyConfig(seed, tel))
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.ServiceConfig{Journal: j, CheckpointEvery: -1}
	cfg.Stream.Tel = tel
	if mut != nil {
		mut(&cfg)
	}
	svc, err := stream.NewService(study, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// get fetches path from the server, returning status and body. The body is
// always drained and closed so keep-alive goroutines can retire.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthReadyAcrossKillAndRecover(t *testing.T) {
	defer http.DefaultClient.CloseIdleConnections()
	tel := telemetry.New(1)
	tel.Events = telemetry.NewEventLog(256)
	s, err := Start(Config{Addr: "127.0.0.1:0", Tel: tel, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// No service attached: alive but not ready.
	if code, _ := get(t, s, "/healthz"); code != 200 {
		t.Fatalf("healthz before attach = %d", code)
	}
	if code, body := get(t, s, "/readyz"); code != 503 || !strings.Contains(body, "no service") {
		t.Fatalf("readyz before attach = %d %q", code, body)
	}

	// Attached, replay complete: ready.
	mem := journal.NewMem()
	svc := newTestService(t, 31, tel, mem, nil)
	s.AttachService(svc)
	if code, _ := get(t, s, "/readyz"); code != 200 {
		t.Fatalf("readyz after attach = %d (phase %s)", code, svc.Phase())
	}

	// Kill mid-run: journal crash fails the pipeline, health degrades.
	mem.FailAfter = 5
	if _, err := svc.Run(context.Background()); !errors.Is(err, journal.ErrCrashed) {
		t.Fatalf("want journal crash, got %v", err)
	}
	if svc.Phase() != stream.PhaseFailed {
		t.Fatalf("phase after crash = %s", svc.Phase())
	}
	if code, body := get(t, s, "/healthz"); code != 503 || !strings.Contains(body, "failed") {
		t.Fatalf("healthz after crash = %d %q", code, body)
	}
	if code, _ := get(t, s, "/readyz"); code != 503 {
		t.Fatal("readyz should degrade with the failed service")
	}

	// Recover: a fresh service over the reopened journal re-attaches and the
	// plane is ready and healthy again.
	mem.Reopen(0)
	svc = newTestService(t, 31, tel, mem, nil)
	if svc.Recovered() == 0 {
		t.Fatal("recovery replayed nothing")
	}
	s.AttachService(svc)
	if code, _ := get(t, s, "/healthz"); code != 200 {
		t.Fatal("healthz should recover with the new service")
	}
	if code, _ := get(t, s, "/readyz"); code != 200 {
		t.Fatal("readyz should recover with the new service")
	}

	// Finish the run: a stopped service is healthy but no longer ready.
	if _, err := svc.Run(context.Background()); err != nil {
		t.Fatalf("final run: %v", err)
	}
	if code, _ := get(t, s, "/healthz"); code != 200 {
		t.Fatal("healthz after graceful stop")
	}
	if code, body := get(t, s, "/readyz"); code != 503 || !strings.Contains(body, stream.PhaseStopped) {
		t.Fatalf("readyz after stop = %d %q", code, body)
	}

	// The event log saw the whole story.
	kinds := map[string]bool{}
	for _, ev := range tel.Events.Snapshot(0) {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{
		telemetry.EventJournalRecovery, telemetry.EventRunStarted,
		telemetry.EventJournalFailure, telemetry.EventRunFinished,
	} {
		if !kinds[want] {
			t.Fatalf("event log missing kind %q (have %v)", want, kinds)
		}
	}
}

func TestHealthzDegradesOnRestartBudgetExhaustion(t *testing.T) {
	defer http.DefaultClient.CloseIdleConnections()
	tel := telemetry.New(1)
	s, err := Start(Config{Addr: "127.0.0.1:0", Tel: tel, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	svc := newTestService(t, 37, tel, journal.NewMem(), func(c *stream.ServiceConfig) {
		// Every in-flight item blows the (absurd) watchdog deadline
		// immediately, so the restart budget exhausts within milliseconds.
		c.Stream.WatchdogDeadline = time.Nanosecond
		c.Stream.RestartBudget = 1
	})
	s.AttachService(svc)
	if _, err := svc.Run(context.Background()); !errors.Is(err, stream.ErrRestartBudget) {
		t.Fatalf("want ErrRestartBudget, got %v", err)
	}
	if code, body := get(t, s, "/healthz"); code != 503 || !strings.Contains(body, stream.PhaseFailed) {
		t.Fatalf("healthz after budget exhaustion = %d %q", code, body)
	}
}

func TestEndpointsSurfaceRunState(t *testing.T) {
	defer http.DefaultClient.CloseIdleConnections()
	tel := telemetry.New(1)
	tel.Events = telemetry.NewEventLog(256)
	s, err := Start(Config{Addr: "127.0.0.1:0", Tel: tel, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	svc := newTestService(t, 41, tel, journal.NewMem(), nil)
	s.AttachService(svc)
	if _, err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Tick()

	if code, body := get(t, s, "/metrics"); code != 200 ||
		!strings.Contains(body, "stream_items_total") ||
		!strings.Contains(body, `stream_queue_depth_max{stage="crawl"}`) {
		t.Fatalf("metrics = %d\n%s", code, body)
	}
	code, body := get(t, s, "/statusz")
	if code != 200 {
		t.Fatalf("statusz = %d", code)
	}
	for _, want := range []string{"phase=stopped", "crawl", "analyze", "alerts", "shed-burn"} {
		if !strings.Contains(body, want) {
			t.Fatalf("statusz missing %q:\n%s", want, body)
		}
	}
	if code, body := get(t, s, "/alerts"); code != 200 || !strings.Contains(body, "commit-stall") {
		t.Fatalf("alerts = %d %q", code, body)
	}
	if code, body := get(t, s, "/events?n=500"); code != 200 ||
		!strings.Contains(body, telemetry.EventJournalRecovery) ||
		!strings.Contains(body, telemetry.EventRunFinished) {
		t.Fatalf("events = %d\n%s", code, body)
	}
	if code, _ := get(t, s, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline = %d", code)
	}
}

func TestSyntheticShedBurstAlertFiresAndResolvesViaTick(t *testing.T) {
	defer http.DefaultClient.CloseIdleConnections()
	tel := telemetry.New(1)
	tel.Events = telemetry.NewEventLog(64)
	clock := time.Unix(100, 0)
	s, err := Start(Config{
		Addr: "127.0.0.1:0", Tel: tel, Interval: -1,
		Now: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	offered := tel.Counter("stream_offered_total")
	shed := tel.Counter("stream_shed_total")
	s.Tick() // warm baseline

	clock = clock.Add(time.Second)
	offered.Add(100)
	shed.Add(40)
	s.Tick()
	if st := stateByName(t, s.eval, "shed-burn"); !st.Firing {
		t.Fatalf("shed-burn not firing after synthetic burst: %+v", st)
	}
	if code, body := get(t, s, "/alerts"); code != 200 || !strings.Contains(body, `"firing": true`) {
		t.Fatalf("alerts during burst = %d\n%s", code, body)
	}

	clock = clock.Add(time.Second)
	offered.Add(100)
	s.Tick()
	if st := stateByName(t, s.eval, "shed-burn"); st.Firing {
		t.Fatalf("shed-burn did not resolve: %+v", st)
	}
	var fired, resolved bool
	for _, ev := range tel.Events.Snapshot(0) {
		if ev.Kind == telemetry.EventAlertFire && ev.Fields["rule"] == "shed-burn" {
			fired = true
		}
		if ev.Kind == telemetry.EventAlertResolve && ev.Fields["rule"] == "shed-burn" {
			resolved = true
		}
	}
	if !fired || !resolved {
		t.Fatalf("alert events fired=%v resolved=%v", fired, resolved)
	}
}

func TestCriticalAlertDegradesHealthz(t *testing.T) {
	defer http.DefaultClient.CloseIdleConnections()
	tel := telemetry.New(1)
	rules := []Rule{{
		Name: "synthetic-critical", Kind: KindDeltaAbove,
		Metric: "boom_total", Threshold: 0, ForCount: 1, Critical: true,
	}}
	s, err := Start(Config{Addr: "127.0.0.1:0", Tel: tel, Interval: -1, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	boom := tel.Counter("boom_total")
	s.Tick()
	boom.Add(3)
	s.Tick()
	if code, body := get(t, s, "/healthz"); code != 503 || !strings.Contains(body, "synthetic-critical") {
		t.Fatalf("healthz under critical alert = %d %q", code, body)
	}
	s.Tick() // clean interval: resolves
	if code, _ := get(t, s, "/healthz"); code != 200 {
		t.Fatal("healthz did not recover after resolve")
	}
}

func TestServerShutdownLeaksNothing(t *testing.T) {
	snap := leakcheck.Before()
	tel := telemetry.New(1)
	tel.Events = telemetry.NewEventLog(32)
	s, err := Start(Config{Addr: "127.0.0.1:0", Tel: tel, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/healthz", "/metrics", "/statusz", "/events", "/alerts"} {
		get(t, s, path)
	}
	time.Sleep(20 * time.Millisecond) // let the collector tick a few times
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	snap.Check(t)
}

func TestBreakerTableOnStatusz(t *testing.T) {
	defer http.DefaultClient.CloseIdleConnections()
	tel := telemetry.New(1)
	bs := resilient.NewBreakerSet(1, 10)
	bs.Report("dead.example.com", false)
	s, err := Start(Config{
		Addr: "127.0.0.1:0", Tel: tel, Interval: -1,
		Breakers: bs.States,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, s, "/statusz")
	if code != 200 || !strings.Contains(body, "dead.example.com") || !strings.Contains(body, "open") {
		t.Fatalf("statusz breaker table = %d\n%s", code, body)
	}
}
