package opsd

import (
	"testing"
	"time"

	"madave/internal/telemetry"
)

func at(sec int64) time.Time { return time.Unix(sec, 0) }

func TestEvaluatorShedBurnFireAndResolve(t *testing.T) {
	tel := telemetry.New(1)
	tel.Events = telemetry.NewEventLog(32)
	e := NewEvaluator(DefaultRules(), tel)

	// Warm the baseline.
	e.Eval(map[string]float64{"stream_offered_total": 0, "stream_shed_total": 0}, at(0))
	// 50% of offers shed this interval: fires.
	e.Eval(map[string]float64{"stream_offered_total": 100, "stream_shed_total": 50}, at(1))
	st := stateByName(t, e, "shed-burn")
	if !st.Firing || st.Value < 0.49 || st.Value > 0.51 {
		t.Fatalf("shed-burn after burst = %+v", st)
	}
	// Clean interval: resolves.
	e.Eval(map[string]float64{"stream_offered_total": 200, "stream_shed_total": 50}, at(2))
	st = stateByName(t, e, "shed-burn")
	if st.Firing {
		t.Fatalf("shed-burn did not resolve: %+v", st)
	}
	if st.Fires != 1 || st.FiredAt != at(1).UnixNano() || st.ResolvedAt != at(2).UnixNano() {
		t.Fatalf("transition bookkeeping = %+v", st)
	}

	var fires, resolves int
	for _, ev := range tel.Events.Snapshot(0) {
		switch ev.Kind {
		case telemetry.EventAlertFire:
			fires++
			if ev.Fields["rule"] != "shed-burn" {
				t.Fatalf("fire event rule = %q", ev.Fields["rule"])
			}
		case telemetry.EventAlertResolve:
			resolves++
		}
	}
	if fires != 1 || resolves != 1 {
		t.Fatalf("events: fires=%d resolves=%d", fires, resolves)
	}
}

func TestEvaluatorNoTrafficNeverBreachesRatio(t *testing.T) {
	e := NewEvaluator(DefaultRules(), nil)
	e.Eval(map[string]float64{}, at(0))
	for i := int64(1); i < 5; i++ {
		e.Eval(map[string]float64{}, at(i))
	}
	if st := stateByName(t, e, "shed-burn"); st.Firing {
		t.Fatalf("shed-burn fired with zero traffic: %+v", st)
	}
}

func TestEvaluatorCommitStallNeedsBusyAndForCount(t *testing.T) {
	e := NewEvaluator(DefaultRules(), nil)
	sample := func(seq, busy float64) map[string]float64 {
		return map[string]float64{"stream_commit_seq": seq, busyMetric: busy}
	}
	e.Eval(sample(10, 1), at(0))
	// Stalled but idle: never fires.
	for i := int64(1); i <= 4; i++ {
		e.Eval(sample(10, 0), at(i))
	}
	if st := stateByName(t, e, "commit-stall"); st.Firing {
		t.Fatal("commit-stall fired while idle")
	}
	// Stalled while busy: fires only after ForCount=3 consecutive intervals.
	e.Eval(sample(10, 1), at(5))
	e.Eval(sample(10, 1), at(6))
	if st := stateByName(t, e, "commit-stall"); st.Firing {
		t.Fatalf("fired before ForCount reached: %+v", st)
	}
	e.Eval(sample(10, 1), at(7))
	st := stateByName(t, e, "commit-stall")
	if !st.Firing {
		t.Fatalf("commit-stall did not fire after 3 busy stalled intervals: %+v", st)
	}
	if fc := e.FiringCritical(); len(fc) != 1 || fc[0] != "commit-stall" {
		t.Fatalf("FiringCritical = %v", fc)
	}
	// Progress resumes: resolves.
	e.Eval(sample(11, 1), at(8))
	if st := stateByName(t, e, "commit-stall"); st.Firing {
		t.Fatal("commit-stall did not resolve on progress")
	}
	if len(e.FiringCritical()) != 0 {
		t.Fatal("critical set not cleared")
	}
}

func TestEvaluatorDeltaAboveAndStreakReset(t *testing.T) {
	rules := []Rule{{
		Name: "burn", Kind: KindDeltaAbove, Metric: "restarts",
		Threshold: 2, ForCount: 2,
	}}
	e := NewEvaluator(rules, nil)
	e.Eval(map[string]float64{"restarts": 0}, at(0))
	e.Eval(map[string]float64{"restarts": 5}, at(1))  // breach 1
	e.Eval(map[string]float64{"restarts": 6}, at(2))  // clean: streak resets
	e.Eval(map[string]float64{"restarts": 10}, at(3)) // breach 1 again
	if st := stateByName(t, e, "burn"); st.Firing {
		t.Fatalf("fired despite streak reset: %+v", st)
	}
	e.Eval(map[string]float64{"restarts": 14}, at(4)) // breach 2: fires
	if st := stateByName(t, e, "burn"); !st.Firing {
		t.Fatalf("did not fire after 2 consecutive breaches: %+v", st)
	}
}

func stateByName(t *testing.T, e *Evaluator, name string) AlertState {
	t.Helper()
	for _, st := range e.States() {
		if st.Rule.Name == name {
			return st
		}
	}
	t.Fatalf("no alert state named %q", name)
	return AlertState{}
}
