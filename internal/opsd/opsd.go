// Package opsd is the study service's live operations plane: an embedded
// admin HTTP server exposing metrics, health/readiness, profiling, a live
// status page, the structured event log, and burn-rate alerts, plus the
// sampling collector that keeps stage watermarks and alert state fresh.
//
// The hard invariant is that the ops plane is observe-only. Every endpoint
// and the collector read pipeline state through sampling accessors
// (stream.Service.Status, telemetry.Registry.Snapshot, EventLog.Snapshot);
// nothing here writes anything the pipeline reads back. A run with the ops
// server on is byte-identical — in study stats and corpus — to one with it
// off, and the repository's determinism tests assert exactly that.
package opsd

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"madave/internal/resilient"
	"madave/internal/stream"
	"madave/internal/telemetry"
)

// DefaultInterval is the collector's sample cadence when none is configured.
const DefaultInterval = time.Second

// Config parameterizes the ops server.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Tel is the run's telemetry set (required). Its registry backs
	// /metrics, its event log (when attached) backs /events.
	Tel *telemetry.Set
	// Interval is the collector cadence (0 = DefaultInterval; negative
	// disables the background collector — tests drive sampling manually via
	// Tick).
	Interval time.Duration
	// Now is the clock the collector stamps samples with (nil = time.Now).
	// Injectable so deterministic-clock tests can drive evaluation without
	// sleeping.
	Now func() time.Time
	// Rules overrides the alert rule set (nil = DefaultRules).
	Rules []Rule
	// Breakers, when non-nil, is sampled for the /statusz circuit table.
	Breakers func() []resilient.BreakerState
}

// Server is a running ops plane.
type Server struct {
	cfg  Config
	now  func() time.Time
	ln   net.Listener
	srv  *http.Server
	mux  *http.ServeMux
	stop chan struct{}
	wg   sync.WaitGroup

	// mu guards svc, eval, and lastSample — everything shared between the
	// collector and the handlers.
	mu   sync.Mutex
	svc  *stream.Service
	eval *Evaluator

	busy   *telemetry.Gauge
	oldest *telemetry.Gauge
	rt     runtimeSampler

	started time.Time
}

// runtimeSampler publishes sampled runtime.MemStats into the registry so
// /metrics and /statusz can watch the process's memory discipline live:
// heap in use, object count, GC cycle count, and pause quantiles over the
// runtime's recent-pause ring. Like everything else on the ops plane it is
// observe-only — the gauges are written out of the pipeline, never read
// back in, so sampling cannot perturb study results.
type runtimeSampler struct {
	heapAlloc   *telemetry.Gauge
	heapSys     *telemetry.Gauge
	heapObjects *telemetry.Gauge
	nextGC      *telemetry.Gauge
	goroutines  *telemetry.Gauge
	gcCycles    *telemetry.Gauge
	pauseTotal  *telemetry.Gauge
	pauseP50    *telemetry.Gauge
	pauseP99    *telemetry.Gauge
	pauseMax    *telemetry.Gauge

	pauses []uint64 // sort scratch, reused across samples
}

func newRuntimeSampler(tel *telemetry.Set) runtimeSampler {
	return runtimeSampler{
		heapAlloc:   tel.Gauge("runtime_heap_alloc_bytes"),
		heapSys:     tel.Gauge("runtime_heap_sys_bytes"),
		heapObjects: tel.Gauge("runtime_heap_objects"),
		nextGC:      tel.Gauge("runtime_heap_next_gc_bytes"),
		goroutines:  tel.Gauge("runtime_goroutines"),
		gcCycles:    tel.Gauge("runtime_gc_cycles"),
		pauseTotal:  tel.Gauge("runtime_gc_pause_total_ns"),
		pauseP50:    tel.Gauge("runtime_gc_pause_p50_ns"),
		pauseP99:    tel.Gauge("runtime_gc_pause_p99_ns"),
		pauseMax:    tel.Gauge("runtime_gc_pause_max_ns"),
	}
}

// sample reads MemStats once and refreshes every runtime gauge. ReadMemStats
// stops the world briefly, which is why it rides the collector cadence
// (~1/s) instead of any per-item path.
func (rt *runtimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rt.heapAlloc.Set(int64(ms.HeapAlloc))
	rt.heapSys.Set(int64(ms.HeapSys))
	rt.heapObjects.Set(int64(ms.HeapObjects))
	rt.nextGC.Set(int64(ms.NextGC))
	rt.goroutines.Set(int64(runtime.NumGoroutine()))
	rt.gcCycles.Set(int64(ms.NumGC))
	rt.pauseTotal.Set(int64(ms.PauseTotalNs))

	// PauseNs is a ring of the most recent GC pauses (up to 256). Quantiles
	// over that window are what an operator actually wants to see: "is GC
	// getting slower *now*", not a since-process-start average.
	n := int(ms.NumGC)
	if n == 0 {
		return
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	rt.pauses = rt.pauses[:0]
	for i := 0; i < n; i++ {
		rt.pauses = append(rt.pauses, ms.PauseNs[(int(ms.NumGC)-1-i+len(ms.PauseNs))%len(ms.PauseNs)])
	}
	sort.Slice(rt.pauses, func(i, j int) bool { return rt.pauses[i] < rt.pauses[j] })
	q := func(f float64) int64 {
		i := int(f * float64(len(rt.pauses)-1))
		return int64(rt.pauses[i])
	}
	rt.pauseP50.Set(q(0.50))
	rt.pauseP99.Set(q(0.99))
	rt.pauseMax.Set(int64(rt.pauses[len(rt.pauses)-1]))
}

// Start builds the endpoint mux, binds cfg.Addr, and launches the HTTP
// server plus (unless disabled) the sampling collector. Close shuts both
// down.
func Start(cfg Config) (*Server, error) {
	if cfg.Tel == nil {
		return nil, fmt.Errorf("opsd: Config.Tel is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &Server{
		cfg:     cfg,
		now:     now,
		mux:     http.NewServeMux(),
		stop:    make(chan struct{}),
		eval:    NewEvaluator(cfg.Rules, cfg.Tel),
		busy:    cfg.Tel.Gauge(busyMetric),
		oldest:  cfg.Tel.Gauge("stream_oldest_inflight_ns"),
		rt:      newRuntimeSampler(cfg.Tel),
		started: now(),
	}
	s.routes()

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("opsd: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	}()
	if cfg.Interval > 0 {
		s.wg.Add(1)
		go s.collect()
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AttachService points the ops plane at a stream service. Before a service
// is attached /readyz reports 503; health and status endpoints degrade
// gracefully either way. May be called again across kill-and-recover cycles.
func (s *Server) AttachService(svc *stream.Service) {
	s.mu.Lock()
	s.svc = svc
	s.mu.Unlock()
}

// Close stops the collector and the HTTP server and waits for both.
func (s *Server) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

// collect is the background sampling loop.
func (s *Server) collect() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.Tick()
		}
	}
}

// Tick takes one collector sample: derive the busy/oldest-in-flight gauges
// from the service's sampled status, then feed the flattened registry to the
// alert evaluator. Exported so deterministic-clock tests can drive sampling
// without a ticker.
func (s *Server) Tick() {
	now := s.now()
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	if svc != nil {
		st := svc.Status(now)
		var pending, oldestNS int64
		for _, sg := range st.Stages {
			pending += sg.Queue + sg.Inflight
			if sg.OldestInflightNS > oldestNS {
				oldestNS = sg.OldestInflightNS
			}
		}
		if st.Shed != nil {
			pending += st.Shed.Buffered
		}
		busy := int64(0)
		if st.Phase == stream.PhaseRunning && pending > 0 {
			busy = 1
		}
		s.busy.Set(busy)
		s.oldest.Set(oldestNS)
	} else {
		s.busy.Set(0)
		s.oldest.Set(0)
	}
	s.rt.sample()
	sample := flatten(s.cfg.Tel.Registry)
	s.mu.Lock()
	s.eval.Eval(sample, now)
	s.mu.Unlock()
}

// flatten sums every counter and gauge by family name, collapsing label
// sets: the rule language talks about metric families, not series.
func flatten(r *telemetry.Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, p := range r.Snapshot() {
		switch p.Kind {
		case string(telemetry.KindCounter), string(telemetry.KindGauge):
			out[p.Name] += float64(p.Value)
		}
	}
	return out
}

// routes mounts every endpoint.
func (s *Server) routes() {
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/alerts", s.handleAlerts)
	s.mux.HandleFunc("/events", s.handleEvents)
	telemetry.RegisterPprof(s.mux)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Tel.Registry.WritePrometheus(w) //nolint:errcheck // client went away
}

// handleHealthz reports liveness: 503 once the service has failed (restart
// budget exhausted, journal unable to persist) or while a critical alert is
// firing; 200 otherwise — including before a service is attached, since a
// process that is still wiring up is alive.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	svc := s.svc
	critical := s.eval.FiringCritical()
	s.mu.Unlock()
	if svc != nil && !svc.Healthy() {
		http.Error(w, "unhealthy: service phase "+svc.Phase(), http.StatusServiceUnavailable)
		return
	}
	if len(critical) > 0 {
		http.Error(w, "unhealthy: critical alerts firing: "+strings.Join(critical, ", "),
			http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 200 only while a service is attached,
// journal replay is complete, and the stream is running (or built and about
// to run).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	if svc == nil {
		http.Error(w, "not ready: no service attached", http.StatusServiceUnavailable)
		return
	}
	if !svc.Ready() {
		http.Error(w, "not ready: service phase "+svc.Phase(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	states := s.eval.States()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(states) //nolint:errcheck // client went away
}

// handleEvents serves the bounded event ring as JSONL, newest-last. ?n=K
// limits to the last K events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log := s.cfg.Tel.Events
	w.Header().Set("Content-Type", "application/jsonl")
	if log == nil {
		return
	}
	last := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			last = n
		}
	}
	log.WriteJSONL(w, last) //nolint:errcheck // client went away
}

// handleStatusz renders the live text status page: service phase and commit
// progress, per-stage watermark table, admission accounting, breaker states,
// cache hit ratios, the running per-network malvertising table, and alert
// state.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	now := s.now()
	s.mu.Lock()
	svc := s.svc
	states := s.eval.States()
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "madave ops plane — up %s\n\n", now.Sub(s.started).Round(time.Second))

	if svc == nil {
		b.WriteString("service: none attached\n")
	} else {
		st := svc.Status(now)
		fmt.Fprintf(&b, "service: phase=%s recovered=%d committed=%d aborted=%d checkpoints=%d\n",
			st.Phase, st.Recovered, st.Committed, st.Aborted, st.Checkpoints)
		if len(st.Stages) > 0 {
			fmt.Fprintf(&b, "\n%-12s %8s %8s %8s %8s %12s %10s %9s %7s %7s %9s\n",
				"stage", "queue", "q.max", "infl", "infl.max", "oldest", "items", "restarts", "panics", "wedged", "fallbacks")
			for _, sg := range st.Stages {
				running := " (done)"
				if sg.Running {
					running = ""
				}
				fmt.Fprintf(&b, "%-12s %8d %8d %8d %8d %12s %10d %9d %7d %7d %9d%s\n",
					sg.Stage, sg.Queue, sg.QueueMax, sg.Inflight, sg.InflightMax,
					time.Duration(sg.OldestInflightNS).Round(time.Millisecond),
					sg.Items, sg.Restarts, sg.Panics, sg.Wedged, sg.Fallbacks, running)
			}
		}
		if st.Shed != nil {
			fmt.Fprintf(&b, "\nadmission: offered=%d delivered=%d shed=%d buffered=%d",
				st.Shed.Offered, st.Shed.Delivered, st.Shed.Shed, st.Shed.Buffered)
			b.WriteString(shedByPriority(s.cfg.Tel.Registry))
			b.WriteByte('\n')
		}
		if len(st.MalNets) > 0 {
			b.WriteString("\nmalvertising by serving network (non-clean ads, live)\n")
			for _, kv := range st.MalNets {
				fmt.Fprintf(&b, "  %-40s %6d\n", kv.Key, kv.Count)
			}
		}
	}

	if s.cfg.Breakers != nil {
		if bs := s.cfg.Breakers(); len(bs) > 0 {
			open := 0
			for _, st := range bs {
				if st.State != "closed" {
					open++
				}
			}
			fmt.Fprintf(&b, "\ncircuit breakers: %d tracked, %d not closed\n", len(bs), open)
			for _, st := range bs {
				if st.State == "closed" {
					continue
				}
				fmt.Fprintf(&b, "  %-40s %-9s failures=%d cooldown=%d\n",
					st.Host, st.State, st.Failures, st.Cooldown)
			}
		}
	}

	b.WriteString(cacheRatios(s.cfg.Tel.Registry))
	b.WriteString(runtimeStatus(s.cfg.Tel.Registry))

	b.WriteString("\nalerts\n")
	for _, st := range states {
		mark := "ok     "
		if st.Firing {
			mark = "FIRING "
			if st.Rule.Critical {
				mark = "FIRING!"
			}
		}
		fmt.Fprintf(&b, "  %s %-14s value=%.4g fires=%d  %s\n",
			mark, st.Rule.Name, st.Value, st.Fires, st.Rule.Desc)
	}

	w.Write([]byte(b.String())) //nolint:errcheck // client went away
}

// runtimeStatus renders the sampled heap/GC gauges as one status block. It
// reads only what the collector's last Tick published, so rendering a status
// page never stops the world itself.
func runtimeStatus(r *telemetry.Registry) string {
	heap, ok := r.GaugeValue("runtime_heap_alloc_bytes")
	if !ok {
		return ""
	}
	objects, _ := r.GaugeValue("runtime_heap_objects")
	gor, _ := r.GaugeValue("runtime_goroutines")
	cycles, _ := r.GaugeValue("runtime_gc_cycles")
	p50, _ := r.GaugeValue("runtime_gc_pause_p50_ns")
	p99, _ := r.GaugeValue("runtime_gc_pause_p99_ns")
	var b strings.Builder
	b.WriteString("\nruntime (sampled each collector tick)\n")
	fmt.Fprintf(&b, "  heap=%.1fMiB objects=%d goroutines=%d gc_cycles=%d pause_p50=%s pause_p99=%s\n",
		float64(heap)/(1<<20), objects, gor, cycles,
		time.Duration(p50).Round(time.Microsecond), time.Duration(p99).Round(time.Microsecond))
	return b.String()
}

// shedByPriority renders the per-priority shed counters inline.
func shedByPriority(r *telemetry.Registry) string {
	var parts []string
	for _, pri := range []string{"high", "mid", "low"} {
		if v, ok := r.CounterValue("stream_shed_by_priority_total", telemetry.L("priority", pri)); ok && v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", pri, v))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " (by priority: " + strings.Join(parts, " ") + ")"
}

// cacheRatios renders hit ratios for every cache that published its counters
// (cache_hits_total{cache=…}/cache_misses_total{cache=…}).
func cacheRatios(r *telemetry.Registry) string {
	type cacheRow struct {
		name         string
		hits, misses int64
	}
	rows := map[string]*cacheRow{}
	for _, p := range r.Snapshot() {
		name := p.Labels["cache"]
		if name == "" {
			continue
		}
		switch p.Name {
		case "cache_hits_total", "cache_misses_total":
		default:
			continue
		}
		row := rows[name]
		if row == nil {
			row = &cacheRow{name: name}
			rows[name] = row
		}
		if p.Name == "cache_hits_total" {
			row.hits = p.Value
		} else {
			row.misses = p.Value
		}
	}
	if len(rows) == 0 {
		return ""
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("\ncaches\n")
	for _, n := range names {
		row := rows[n]
		total := row.hits + row.misses
		ratio := 0.0
		if total > 0 {
			ratio = float64(row.hits) / float64(total)
		}
		fmt.Fprintf(&b, "  %-20s hits=%-8d misses=%-8d ratio=%.1f%%\n",
			n, row.hits, row.misses, 100*ratio)
	}
	return b.String()
}
