// Alert evaluation for the ops plane: declarative burn-rate rules evaluated
// over successive metric snapshots. Rules never read wall-clock time beyond
// the timestamps the collector hands them and never feed back into the
// pipeline — an alert firing changes HTTP responses (/alerts, /healthz), not
// control flow.
package opsd

import (
	"time"

	"madave/internal/telemetry"
)

// RuleKind selects how a rule interprets the metric deltas between two
// consecutive samples.
type RuleKind string

const (
	// KindRatio fires when delta(Metric)/delta(Denom) over the interval is
	// at least Threshold. A zero denominator delta (no traffic) never
	// breaches.
	KindRatio RuleKind = "ratio"
	// KindNoProgress fires when Metric made no progress across the interval
	// while the service was busy (the collector's stream_busy gauge is
	// non-zero) — the commit-stall shape.
	KindNoProgress RuleKind = "no_progress"
	// KindDeltaAbove fires when delta(Metric) over the interval exceeds
	// Threshold — the restart-budget-burn and error-spike shape.
	KindDeltaAbove RuleKind = "delta_above"
)

// busyMetric is the derived gauge the collector sets: non-zero while the
// stream has queued or in-flight work. KindNoProgress rules consult it so an
// idle-but-healthy service (empty queues, waiting on its source) is not
// mistaken for a stalled one.
const busyMetric = "stream_busy"

// Rule is one declarative burn-rate alert.
type Rule struct {
	// Name identifies the rule in /alerts, events, and health reasons.
	Name string `json:"name"`
	// Desc is the human explanation rendered on /statusz and /alerts.
	Desc string   `json:"desc,omitempty"`
	Kind RuleKind `json:"kind"`
	// Metric is the numerator (KindRatio) or the progress/burn metric.
	// Values are summed across label sets, so labeled counter families
	// (stream_commit_errors_total{cause=…}) evaluate as their total.
	Metric string `json:"metric"`
	// Denom is the denominator metric for KindRatio.
	Denom string `json:"denom,omitempty"`
	// Threshold is the ratio (KindRatio) or per-interval delta
	// (KindDeltaAbove) that counts as a breach.
	Threshold float64 `json:"threshold"`
	// ForCount is how many consecutive breaching intervals are needed before
	// the alert fires (minimum 1). Breach streaks reset on any clean
	// interval, so transient blips don't page.
	ForCount int `json:"for_count,omitempty"`
	// Critical alerts degrade /healthz to 503 while firing.
	Critical bool `json:"critical,omitempty"`
}

// DefaultRules returns the stock alert set for the streaming study service:
//
//   - shed-burn: ≥10% of offered impressions shed over an interval — the
//     service is in sustained overload, not an isolated burst.
//   - commit-stall: the commit sequence made no progress for 3 consecutive
//     intervals while work was queued or in flight. Critical: a stalled
//     journal writer means nothing is durable.
//   - restart-burn: more than 2 supervised worker restarts in one interval —
//     the restart budget is burning toward exhaustion.
//   - error-spike: any journal commit error. Commit errors fail the run, so
//     even one is alert-worthy.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "shed-burn", Kind: KindRatio,
			Desc:   "sustained overload: >=10% of offered impressions shed",
			Metric: "stream_shed_total", Denom: "stream_offered_total",
			Threshold: 0.10, ForCount: 1,
		},
		{
			Name: "commit-stall", Kind: KindNoProgress,
			Desc:   "commit sequence stalled while work is pending",
			Metric: "stream_commit_seq", ForCount: 3, Critical: true,
		},
		{
			Name: "restart-burn", Kind: KindDeltaAbove,
			Desc:   "worker restarts burning the budget",
			Metric: "stream_restarts_total", Threshold: 2, ForCount: 1,
		},
		{
			Name: "error-spike", Kind: KindDeltaAbove,
			Desc:   "journal commit errors observed",
			Metric: "stream_commit_errors_total", Threshold: 0, ForCount: 1,
		},
	}
}

// AlertState is one rule's current evaluation state.
type AlertState struct {
	Rule   Rule `json:"rule"`
	Firing bool `json:"firing"`
	// Streak counts consecutive breaching intervals (resets on a clean one).
	Streak int `json:"streak,omitempty"`
	// Value is the last evaluated ratio/delta.
	Value float64 `json:"value"`
	// FiredAt/ResolvedAt are wall-clock nanoseconds of the last transitions
	// (0 = never).
	FiredAt    int64 `json:"fired_at_ns,omitempty"`
	ResolvedAt int64 `json:"resolved_at_ns,omitempty"`
	// Fires counts lifetime fire transitions.
	Fires int64 `json:"fires,omitempty"`
}

// Evaluator evaluates a rule set over successive metric samples. It is not
// itself goroutine-safe; the collector owns it and serializes Eval calls.
// States() copies, so HTTP handlers may read concurrently with Eval only via
// the Server's lock.
type Evaluator struct {
	rules  []Rule
	states []AlertState
	prev   map[string]float64
	warmed bool
	tel    *telemetry.Set
}

// NewEvaluator builds an evaluator over rules (nil = DefaultRules). Fire and
// resolve transitions are mirrored into tel's event log when one is attached.
func NewEvaluator(rules []Rule, tel *telemetry.Set) *Evaluator {
	if rules == nil {
		rules = DefaultRules()
	}
	e := &Evaluator{rules: rules, tel: tel}
	for _, r := range rules {
		if r.ForCount < 1 {
			r.ForCount = 1
		}
		e.states = append(e.states, AlertState{Rule: r})
	}
	return e
}

// Eval folds one metric sample in. The first sample only warms the delta
// baseline; evaluation starts with the second.
func (e *Evaluator) Eval(sample map[string]float64, now time.Time) {
	if !e.warmed {
		e.prev = sample
		e.warmed = true
		return
	}
	for i := range e.states {
		st := &e.states[i]
		breach, value := e.judge(st.Rule, sample)
		st.Value = value
		if breach {
			st.Streak++
			if !st.Firing && st.Streak >= st.Rule.ForCount {
				st.Firing = true
				st.FiredAt = now.UnixNano()
				st.Fires++
				e.tel.Event(telemetry.LevelError, telemetry.EventAlertFire, "",
					"alert firing: "+st.Rule.Name, "rule", st.Rule.Name)
			}
		} else {
			st.Streak = 0
			if st.Firing {
				st.Firing = false
				st.ResolvedAt = now.UnixNano()
				e.tel.Event(telemetry.LevelInfo, telemetry.EventAlertResolve, "",
					"alert resolved: "+st.Rule.Name, "rule", st.Rule.Name)
			}
		}
	}
	e.prev = sample
}

// judge evaluates one rule against (prev, sample).
func (e *Evaluator) judge(r Rule, sample map[string]float64) (breach bool, value float64) {
	delta := sample[r.Metric] - e.prev[r.Metric]
	switch r.Kind {
	case KindRatio:
		dDen := sample[r.Denom] - e.prev[r.Denom]
		if dDen <= 0 {
			return false, 0
		}
		ratio := delta / dDen
		return ratio >= r.Threshold, ratio
	case KindNoProgress:
		if sample[busyMetric] <= 0 {
			return false, delta
		}
		return delta == 0, delta
	case KindDeltaAbove:
		return delta > r.Threshold, delta
	default:
		return false, 0
	}
}

// States returns a copy of every rule's current state, in rule order.
func (e *Evaluator) States() []AlertState {
	out := make([]AlertState, len(e.states))
	copy(out, e.states)
	return out
}

// FiringCritical lists the names of critical rules currently firing — the
// set that degrades /healthz.
func (e *Evaluator) FiringCritical() []string {
	var out []string
	for _, st := range e.states {
		if st.Firing && st.Rule.Critical {
			out = append(out, st.Rule.Name)
		}
	}
	return out
}
