package opsd

import (
	"net/http"
	"runtime"
	"strings"
	"testing"

	"madave/internal/telemetry"
)

// TestRuntimeGaugesPublished drives one collector tick and checks that the
// sampled heap/GC gauges land on /metrics and render on /statusz.
func TestRuntimeGaugesPublished(t *testing.T) {
	defer http.DefaultClient.CloseIdleConnections()
	tel := telemetry.New(1)
	s, err := Start(Config{Addr: "127.0.0.1:0", Tel: tel, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck

	runtime.GC() // guarantee at least one pause sample for the quantiles
	s.Tick()

	if v, ok := tel.Registry.GaugeValue("runtime_heap_alloc_bytes"); !ok || v <= 0 {
		t.Fatalf("runtime_heap_alloc_bytes = %d (ok=%v), want > 0", v, ok)
	}
	if v, ok := tel.Registry.GaugeValue("runtime_gc_cycles"); !ok || v <= 0 {
		t.Fatalf("runtime_gc_cycles = %d (ok=%v), want > 0", v, ok)
	}
	if _, ok := tel.Registry.GaugeValue("runtime_gc_pause_p99_ns"); !ok {
		t.Fatal("runtime_gc_pause_p99_ns not registered")
	}

	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, name := range []string{
		"runtime_heap_alloc_bytes", "runtime_heap_objects", "runtime_goroutines",
		"runtime_gc_cycles", "runtime_gc_pause_p50_ns", "runtime_gc_pause_p99_ns",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s:\n%s", name, body)
		}
	}

	code, body = get(t, s, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	if !strings.Contains(body, "runtime (sampled each collector tick)") ||
		!strings.Contains(body, "gc_cycles=") {
		t.Fatalf("/statusz missing runtime block:\n%s", body)
	}
}
