// Package resilient makes the crawl pipeline survive a hostile network.
// It provides an http.RoundTripper middleware that layers three defenses
// over any transport (normally memnet's, optionally chaos-wrapped):
//
//   - bounded retries with exponential backoff and deterministic jitter for
//     transient failures (connection resets, NXDOMAIN flaps, 5xx bursts,
//     truncated bodies, per-attempt timeouts);
//   - a per-attempt deadline, so a stalled read costs one attempt, not the
//     whole visit;
//   - a per-host circuit breaker, so a dead ad server is cut off after a
//     few consecutive failures instead of stalling every request aimed at
//     it.
//
// Everything is deterministic given a seed: jitter derives from
// (seed, URL, attempt), and the breaker counts requests, not wall-clock
// time, so a crawl's resilience statistics are reproducible run to run.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"madave/internal/memnet"
	"madave/internal/stats"
	"madave/internal/telemetry"
)

// Policy parameterizes the retry layer.
type Policy struct {
	// MaxAttempts is the total number of tries per request (minimum 1).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt up to MaxDelay. The actual wait is jittered uniformly over
	// [delay/2, delay].
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// AttemptTimeout bounds one attempt including its body read (0 = the
	// 2s default, negative = no per-attempt deadline). Stalled reads are
	// broken by this; without it a stall against a deadline-free parent
	// context would hang forever.
	AttemptTimeout time.Duration
	// Seed drives the jitter deterministically.
	Seed uint64
}

// DefaultPolicy is tuned for the in-memory universe: fast enough that a
// fully hostile host costs milliseconds, patient enough that flaps recover.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:    3,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       50 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		Seed:           1,
	}
}

// withDefaults fills zero fields from DefaultPolicy (Seed 0 is kept: it is
// a valid seed).
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = d.AttemptTimeout
	}
	return p
}

// Counters aggregates resilience events across a transport's lifetime. All
// fields are updated atomically; totals are order-independent, so shared
// counters stay deterministic under any worker interleaving.
type Counters struct {
	Attempts             int64 // individual tries issued
	Retries              int64 // tries beyond the first
	Timeouts             int64 // attempts ended by the per-attempt deadline
	Truncations          int64 // responses with a truncated body
	BreakerOpens         int64 // closed -> open transitions
	BreakerShortCircuits int64 // requests rejected by an open breaker
}

// discardCounters absorbs events for transports built without counters.
var discardCounters Counters

// Snapshot returns a copy safe to read while workers are still running.
func (c *Counters) Snapshot() Counters {
	if c == nil {
		return Counters{}
	}
	return Counters{
		Attempts:             atomic.LoadInt64(&c.Attempts),
		Retries:              atomic.LoadInt64(&c.Retries),
		Timeouts:             atomic.LoadInt64(&c.Timeouts),
		Truncations:          atomic.LoadInt64(&c.Truncations),
		BreakerOpens:         atomic.LoadInt64(&c.BreakerOpens),
		BreakerShortCircuits: atomic.LoadInt64(&c.BreakerShortCircuits),
	}
}

// BreakerOpenError reports a request short-circuited by an open breaker.
type BreakerOpenError struct{ Host string }

func (e *BreakerOpenError) Error() string {
	return "resilient: circuit open for host " + e.Host
}

// breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// hostBreaker is one host's circuit state.
type hostBreaker struct {
	state    int
	failures int // consecutive failures while closed
	cooldown int // short-circuits remaining before a probe is allowed
}

// BreakerSet holds per-host circuit breakers. The breaker is count-based,
// not clock-based: after Threshold consecutive failures the host is open
// and the next Cooldown requests are rejected instantly; the request after
// that is a half-open probe whose outcome closes or re-opens the circuit.
// Counting requests instead of seconds keeps the breaker deterministic.
//
// A BreakerSet is safe for concurrent use, but determinism of *when* it
// trips requires that each instance see a deterministic request sequence —
// the crawler gives each worker its own set.
type BreakerSet struct {
	// Threshold is the consecutive-failure count that opens a circuit
	// (minimum 1; default 5).
	Threshold int
	// Cooldown is how many requests are short-circuited per open period
	// before a probe (default 10).
	Cooldown int

	mu sync.Mutex
	m  map[string]*hostBreaker
}

// NewBreakerSet returns a breaker set with the given thresholds (zeros take
// the defaults).
func NewBreakerSet(threshold, cooldown int) *BreakerSet {
	return &BreakerSet{Threshold: threshold, Cooldown: cooldown}
}

func (s *BreakerSet) thresholds() (int, int) {
	th, cd := s.Threshold, s.Cooldown
	if th <= 0 {
		th = 5
	}
	if cd <= 0 {
		cd = 10
	}
	return th, cd
}

// Allow reports whether a request to host may proceed. While open it
// consumes one cooldown slot per call; when the cooldown is spent the
// circuit goes half-open and the call is allowed as a probe.
func (s *BreakerSet) Allow(host string) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(host)
	switch b.state {
	case stateOpen:
		b.cooldown--
		if b.cooldown > 0 {
			return false
		}
		b.state = stateHalfOpen
		return true
	default:
		return true
	}
}

// Report records the outcome of an allowed request. It returns true when
// this outcome opened the circuit (a closed->open or half-open->open
// transition), so callers can count distinct opens.
func (s *BreakerSet) Report(host string, ok bool) bool {
	opened, _ := s.ReportOutcome(host, ok)
	return opened
}

// ReportOutcome records the outcome of an allowed request and reports both
// edge transitions: opened is a closed->open or half-open->open edge, closed
// is a recovery edge (a successful probe closing a previously open or
// half-open circuit). Callers that only care about opens can use Report.
func (s *BreakerSet) ReportOutcome(host string, ok bool) (opened, closed bool) {
	if s == nil {
		return false, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	th, cd := s.thresholds()
	b := s.get(host)
	if ok {
		closed = b.state != stateClosed
		b.state = stateClosed
		b.failures = 0
		return false, closed
	}
	switch b.state {
	case stateHalfOpen:
		// Probe failed: straight back to open.
		b.state = stateOpen
		b.cooldown = cd
		return true, false
	default:
		b.failures++
		if b.state == stateClosed && b.failures >= th {
			b.state = stateOpen
			b.cooldown = cd
			return true, false
		}
	}
	return false, false
}

// BreakerState is one host's circuit snapshot for the ops plane.
type BreakerState struct {
	Host     string `json:"host"`
	State    string `json:"state"` // "closed", "open", or "half-open"
	Failures int    `json:"failures,omitempty"`
	Cooldown int    `json:"cooldown,omitempty"`
}

// States snapshots every tracked host's circuit, sorted by host name. It is
// read-only: sampling never advances breaker state.
func (s *BreakerSet) States() []BreakerState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]BreakerState, 0, len(s.m))
	for host, b := range s.m {
		st := "closed"
		switch b.state {
		case stateOpen:
			st = "open"
		case stateHalfOpen:
			st = "half-open"
		}
		out = append(out, BreakerState{Host: host, State: st, Failures: b.failures, Cooldown: b.cooldown})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Open reports whether host's circuit is currently open.
func (s *BreakerSet) Open(host string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[strings.ToLower(host)]
	return ok && b.state == stateOpen
}

func (s *BreakerSet) get(host string) *hostBreaker {
	if s.m == nil {
		s.m = make(map[string]*hostBreaker)
	}
	host = strings.ToLower(host)
	b, ok := s.m[host]
	if !ok {
		b = &hostBreaker{}
		s.m[host] = b
	}
	return b
}

// maxBufferedBody bounds how much of a response the retry layer buffers to
// detect truncation. It exceeds the browser's own 1MB cap, so nothing the
// pipeline would use is lost.
const maxBufferedBody = 2 << 20

// Transport is the retrying, breaker-guarded RoundTripper.
type Transport struct {
	// Next is the wrapped transport.
	Next http.RoundTripper
	// Policy configures retries (zero fields take defaults).
	Policy Policy
	// Breakers, when non-nil, guards per-host circuits.
	Breakers *BreakerSet
	// Counters, when non-nil, receives resilience event counts.
	Counters *Counters
	// Tel, when non-nil, mirrors the Counters events into the metrics
	// registry (resilient_events_total{event=…}) and records one
	// resilient.attempt span per try. Purely observational: retry and
	// breaker decisions never read telemetry state.
	Tel *telemetry.Set

	telOnce sync.Once
	events  map[string]*telemetry.Counter
}

// event names mirrored into the registry.
const (
	evAttempt      = "attempt"
	evRetry        = "retry"
	evTimeout      = "timeout"
	evTruncation   = "truncation"
	evBreakerOpen  = "breaker_open"
	evShortCircuit = "breaker_short_circuit"
)

// count bumps the Counters field via addr and, when telemetry is wired, the
// matching registry counter.
func (t *Transport) count(addr *int64, event string) {
	atomic.AddInt64(addr, 1)
	if t.Tel == nil {
		return
	}
	t.telOnce.Do(func() {
		t.events = make(map[string]*telemetry.Counter)
		for _, ev := range []string{evAttempt, evRetry, evTimeout, evTruncation, evBreakerOpen, evShortCircuit} {
			t.events[ev] = t.Tel.Counter("resilient_events_total", telemetry.L("event", ev))
		}
	})
	t.events[event].Inc()
}

// New wraps next with the default policy, a fresh breaker set, and the
// given counters (which may be nil).
func New(next http.RoundTripper, policy Policy, counters *Counters) *Transport {
	return &Transport{
		Next:     next,
		Policy:   policy,
		Breakers: NewBreakerSet(0, 0),
		Counters: counters,
	}
}

// RoundTrip issues the request with retries. The returned response's body
// is fully buffered in memory; a truncated final attempt yields the partial
// bytes with no error — graceful degradation over data loss.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	pol := t.Policy.withDefaults()
	ctx := req.Context()
	host := req.URL.Hostname()
	cnt := t.counters()

	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !t.Breakers.Allow(host) {
			t.count(&cnt.BreakerShortCircuits, evShortCircuit)
			return nil, &BreakerOpenError{Host: host}
		}

		t.count(&cnt.Attempts, evAttempt)
		resp, body, err := t.attempt(req, pol, attempt)

		truncated := errors.Is(err, io.ErrUnexpectedEOF)
		if truncated {
			t.count(&cnt.Truncations, evTruncation)
		}
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			t.count(&cnt.Timeouts, evTimeout)
		}

		ok := err == nil && (resp == nil || resp.StatusCode < 500)
		t.report(host, ok)
		if ok {
			return restoreBody(resp, body), nil
		}

		if attempt >= pol.MaxAttempts || !transient(err, resp) || ctx.Err() != nil {
			// Out of patience. A truncated body is still a body: hand the
			// partial bytes over rather than dropping the response, and let
			// 5xx responses through so callers observe the status.
			if resp != nil && (err == nil || truncated) {
				return restoreBody(resp, body), nil
			}
			return nil, err
		}
		t.count(&cnt.Retries, evRetry)
		if !t.backoff(ctx, pol, req.URL.String(), attempt) {
			return nil, ctx.Err()
		}
	}
}

// attempt issues one try: clone the request with the attempt tag and
// per-attempt deadline, round-trip it, and buffer the body.
func (t *Transport) attempt(req *http.Request, pol Policy, attempt int) (*http.Response, []byte, error) {
	actx := req.Context()
	if attempt > 1 {
		// AttemptFrom defaults to 1 when the tag is absent, so the common
		// first attempt skips the context-value allocation entirely.
		actx = memnet.WithAttempt(actx, attempt)
	}
	if pol.AttemptTimeout > 0 {
		// A parent deadline that already fires sooner makes the per-attempt
		// timer redundant; skipping it avoids a timer + context per attempt.
		if d, ok := actx.Deadline(); !ok || time.Until(d) > pol.AttemptTimeout {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(actx, pol.AttemptTimeout)
			defer cancel()
		}
	}
	if t.Tel != nil {
		// A leaf StageTimer instead of a full Span: the attempt needs a
		// latency sample and a trace row, not a context of its own. The key
		// only surfaces in trace output; render it only when a tracer is
		// attached.
		key := ""
		if t.Tel.Tracer != nil {
			key = fmt.Sprintf("%s|attempt=%d", req.URL.String(), attempt)
		}
		sp := t.Tel.StartStageTimer(actx, telemetry.StageResilient, key)
		defer sp.End()
	}

	// WithContext is a shallow copy: downstream transports (memnet, or a
	// stock net/http transport) must not mutate the request, and attempts run
	// strictly sequentially, so sharing the URL and header map is safe and
	// skips Clone's deep header/URL copies.
	resp, err := t.Next.RoundTrip(req.WithContext(actx))
	if err != nil {
		return nil, nil, err
	}
	body, rerr := readBody(resp)
	resp.Body.Close()
	return resp, body, rerr
}

// readBody buffers up to maxBufferedBody bytes of a response, sizing the
// buffer from Content-Length when the transport declares one (the in-memory
// transport always does) instead of growing through io.ReadAll.
func readBody(resp *http.Response) ([]byte, error) {
	// ContentLength 0 is ambiguous (hand-built responses leave it unset), so
	// only a positive declared length takes the presized path.
	if n := resp.ContentLength; n > 0 && n <= maxBufferedBody {
		buf := make([]byte, n)
		m, err := io.ReadFull(resp.Body, buf)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			// Short body: surface the truncation the same way the generic
			// path would (partial bytes, ErrUnexpectedEOF from the reader).
			return buf[:m], io.ErrUnexpectedEOF
		}
		return buf[:m], err
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxBufferedBody))
}

// counters returns the transport's counter sink, never nil.
func (t *Transport) counters() *Counters {
	if t.Counters == nil {
		return &discardCounters
	}
	return t.Counters
}

// report feeds the breaker, counts circuit opens, and mirrors both edge
// transitions into the structured event log (when telemetry is wired).
func (t *Transport) report(host string, ok bool) {
	if t.Breakers == nil {
		return
	}
	opened, closed := t.Breakers.ReportOutcome(host, ok)
	if opened {
		t.count(&t.counters().BreakerOpens, evBreakerOpen)
		t.Tel.Event(telemetry.LevelWarn, telemetry.EventBreakerOpen, "crawl",
			"circuit opened", "host", host)
	}
	if closed {
		t.Tel.Event(telemetry.LevelInfo, telemetry.EventBreakerClose, "crawl",
			"circuit closed after successful probe", "host", host)
	}
}

// restoreBody reattaches a buffered body to a response.
func restoreBody(resp *http.Response, body []byte) *http.Response {
	resp.Body = io.NopCloser(strings.NewReader(string(body)))
	return resp
}

// transient reports whether a failed attempt is worth retrying: connection
// resets, NXDOMAIN flaps, truncated bodies, per-attempt timeouts, and 5xx
// responses. Permanent conditions (4xx, malformed URLs, blocked requests)
// are not.
func transient(err error, resp *http.Response) bool {
	if err != nil {
		var rst *memnet.ResetError
		var nx *memnet.NXDomainError
		switch {
		case errors.As(err, &rst):
			return true
		case errors.As(err, &nx):
			return true
		case errors.Is(err, io.ErrUnexpectedEOF):
			return true
		case errors.Is(err, context.DeadlineExceeded):
			// The *attempt* deadline; the caller checks the parent context
			// before retrying.
			return true
		}
		return false
	}
	if resp != nil {
		switch resp.StatusCode {
		case http.StatusInternalServerError, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
	}
	return false
}

// backoff sleeps the jittered exponential delay before the next attempt.
// It returns false if the context ended first. The jitter is a pure
// function of (seed, url, attempt), so retry timing is reproducible.
func (t *Transport) backoff(ctx context.Context, pol Policy, url string, attempt int) bool {
	delay := pol.BaseDelay << (attempt - 1)
	if delay > pol.MaxDelay || delay <= 0 {
		delay = pol.MaxDelay
	}
	rng := stats.NewRNGFromString(fmt.Sprintf("backoff|%d|%s|%d", pol.Seed, url, attempt))
	jittered := delay/2 + time.Duration(rng.Float64()*float64(delay/2))
	timer := time.NewTimer(jittered)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
