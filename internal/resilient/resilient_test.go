package resilient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"madave/internal/memnet"
	"madave/internal/telemetry"
)

// scriptedTripper returns canned outcomes in sequence, then repeats the
// last one. It records the attempt numbers it saw.
type scriptedTripper struct {
	outcomes []func(*http.Request) (*http.Response, error)
	calls    int32
	attempts []int
}

func (s *scriptedTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	i := int(atomic.AddInt32(&s.calls, 1)) - 1
	s.attempts = append(s.attempts, memnet.AttemptFrom(req.Context()))
	if i >= len(s.outcomes) {
		i = len(s.outcomes) - 1
	}
	return s.outcomes[i](req)
}

func okResp(body string) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: 200,
			Status:     "200 OK",
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(body)),
			Request:    req,
		}, nil
	}
}

func statusResp(code int) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: code,
			Status:     fmt.Sprintf("%d x", code),
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	}
}

func errOut(err error) func(*http.Request) (*http.Response, error) {
	return func(*http.Request) (*http.Response, error) { return nil, err }
}

func fastPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, AttemptTimeout: 100 * time.Millisecond, Seed: 1}
}

func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestRetriesResetThenSucceeds(t *testing.T) {
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		errOut(&memnet.ResetError{Host: "a.example.com"}),
		errOut(&memnet.ResetError{Host: "a.example.com"}),
		okResp("hello"),
	}}
	var c Counters
	tr := New(s, fastPolicy(), &c)
	resp, err := get(t, tr, "http://a.example.com/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" {
		t.Fatalf("body = %q", body)
	}
	if c.Retries != 2 || c.Attempts != 3 {
		t.Fatalf("counters = %+v", c)
	}
	if got := s.attempts; got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("attempt tags = %v", got)
	}
}

func TestNoRetryOnPermanentFailure(t *testing.T) {
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		statusResp(404),
	}}
	var c Counters
	tr := New(s, fastPolicy(), &c)
	resp, err := get(t, tr, "http://a.example.com/missing")
	if err != nil || resp.StatusCode != 404 {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	if c.Retries != 0 || s.calls != 1 {
		t.Fatalf("retried a 404: %+v calls=%d", c, s.calls)
	}
}

func TestRetry5xxThenGiveUpReturnsResponse(t *testing.T) {
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		statusResp(503),
	}}
	var c Counters
	tr := New(s, fastPolicy(), &c)
	resp, err := get(t, tr, "http://b.example.com/busy")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if s.calls != 3 || c.Retries != 2 {
		t.Fatalf("calls=%d counters=%+v", s.calls, c)
	}
}

func TestTruncationRetriedThenPartialReturned(t *testing.T) {
	truncated := func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: 200,
			Status:     "200 OK",
			Header:     make(http.Header),
			Body:       io.NopCloser(&truncReader{data: "partial-content"}),
			Request:    req,
		}, nil
	}
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){truncated}}
	var c Counters
	tr := New(s, fastPolicy(), &c)
	resp, err := get(t, tr, "http://c.example.com/cut")
	if err != nil {
		t.Fatalf("truncated final attempt should degrade, got err %v", err)
	}
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil || string(body) != "partial-content" {
		t.Fatalf("body=%q err=%v", body, rerr)
	}
	if c.Truncations != 3 || c.Retries != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

type truncReader struct {
	data string
	off  int
}

func (r *truncReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestAttemptTimeoutBreaksStall(t *testing.T) {
	stalled := func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: 200,
			Status:     "200 OK",
			Header:     make(http.Header),
			Body:       io.NopCloser(&stallReader{ctx: req.Context()}),
			Request:    req,
		}, nil
	}
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		stalled, okResp("recovered"),
	}}
	var c Counters
	pol := fastPolicy()
	pol.AttemptTimeout = 20 * time.Millisecond
	tr := New(s, pol, &c)
	start := time.Now()
	resp, err := get(t, tr, "http://d.example.com/stall")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "recovered" {
		t.Fatalf("body = %q", body)
	}
	if c.Timeouts != 1 || c.Retries != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall was not bounded by the attempt timeout")
	}
}

type stallReader struct{ ctx context.Context }

func (r *stallReader) Read(p []byte) (int, error) {
	<-r.ctx.Done()
	return 0, r.ctx.Err()
}

func TestParentContextStopsRetries(t *testing.T) {
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		errOut(&memnet.ResetError{Host: "e.example.com"}),
	}}
	var c Counters
	pol := fastPolicy()
	pol.MaxAttempts = 10
	pol.BaseDelay = 50 * time.Millisecond
	pol.MaxDelay = 50 * time.Millisecond
	tr := New(s, pol, &c)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://e.example.com/", nil)
	_, err := tr.RoundTrip(req)
	if err == nil {
		t.Fatal("expected error")
	}
	if s.calls >= 10 {
		t.Fatalf("retries continued past parent deadline: %d calls", s.calls)
	}
}

func TestBreakerOpensAndShortCircuits(t *testing.T) {
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		errOut(&memnet.NXDomainError{Host: "dead.example.com"}),
	}}
	var c Counters
	pol := fastPolicy()
	pol.MaxAttempts = 1 // isolate breaker behavior from retries
	tr := New(s, pol, &c)
	tr.Breakers = NewBreakerSet(3, 5)

	// 3 failures open the circuit.
	for i := 0; i < 3; i++ {
		if _, err := get(t, tr, fmt.Sprintf("http://dead.example.com/%d", i)); err == nil {
			t.Fatal("expected failure")
		}
	}
	if c.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d", c.BreakerOpens)
	}
	if !tr.Breakers.Open("dead.example.com") {
		t.Fatal("breaker should be open")
	}
	// The next Cooldown-1 requests are shed without touching the transport.
	calls := s.calls
	shed := 0
	for i := 0; i < 4; i++ {
		_, err := get(t, tr, "http://dead.example.com/shed")
		var open *BreakerOpenError
		if errors.As(err, &open) {
			shed++
		}
	}
	if shed != 4 || s.calls != calls {
		t.Fatalf("shed=%d transport calls %d -> %d", shed, calls, s.calls)
	}
	// Cooldown spent: the next request probes (and fails -> reopen).
	if _, err := get(t, tr, "http://dead.example.com/probe"); err == nil {
		t.Fatal("probe should fail")
	}
	if s.calls != calls+1 {
		t.Fatal("probe did not reach the transport")
	}
	if c.BreakerOpens != 2 {
		t.Fatalf("failed probe should reopen: opens = %d", c.BreakerOpens)
	}

	// Other hosts are unaffected.
	s.outcomes = append(s.outcomes, okResp("fine"))
	if tr.Breakers.Open("alive.example.com") {
		t.Fatal("unrelated host tripped")
	}
}

func TestBreakerProbeSuccessCloses(t *testing.T) {
	var c Counters
	bs := NewBreakerSet(2, 2)
	// Two failures -> open.
	bs.Report("h.example.com", false)
	if bs.Report("h.example.com", false) != true {
		t.Fatal("second failure should open")
	}
	// Cooldown of 2: one rejected, then probe allowed.
	if bs.Allow("h.example.com") {
		t.Fatal("first post-open request should be shed")
	}
	if !bs.Allow("h.example.com") {
		t.Fatal("cooldown spent: probe should be allowed")
	}
	if bs.Report("h.example.com", true) {
		t.Fatal("successful probe is not an open transition")
	}
	if bs.Open("h.example.com") || !bs.Allow("h.example.com") {
		t.Fatal("circuit should be closed after successful probe")
	}
	_ = c
}

func TestBreakerReopenCycleAndRecovery(t *testing.T) {
	bs := NewBreakerSet(2, 3)
	host := "flaky.example.com"

	// Two failures open the circuit.
	bs.Report(host, false)
	if !bs.Report(host, false) {
		t.Fatal("second failure should open")
	}

	// First open period: cooldown-1 requests shed, then a half-open probe.
	for i := 0; i < 2; i++ {
		if bs.Allow(host) {
			t.Fatalf("request %d of the cooldown should be shed", i)
		}
	}
	if !bs.Allow(host) {
		t.Fatal("cooldown spent: probe should be allowed")
	}
	if bs.Open(host) {
		t.Fatal("half-open must not report as open")
	}

	// Probe fails: straight back to open, and the reopen must count as a
	// distinct open transition with a full fresh cooldown.
	if !bs.Report(host, false) {
		t.Fatal("failed probe should report a reopen transition")
	}
	if !bs.Open(host) {
		t.Fatal("circuit should be open again after the failed probe")
	}
	for i := 0; i < 2; i++ {
		if bs.Allow(host) {
			t.Fatalf("request %d of the second cooldown should be shed", i)
		}
	}
	if !bs.Allow(host) {
		t.Fatal("second cooldown spent: probe should be allowed")
	}

	// This probe succeeds: the circuit closes and the failure streak resets,
	// so re-opening needs the full threshold again, not one more failure.
	if bs.Report(host, true) {
		t.Fatal("successful probe is not an open transition")
	}
	if bs.Open(host) || !bs.Allow(host) {
		t.Fatal("circuit should be closed after the successful probe")
	}
	if bs.Report(host, false) {
		t.Fatal("one failure after recovery must not re-open a threshold-2 breaker")
	}
	if !bs.Report(host, false) {
		t.Fatal("the full threshold of fresh failures should re-open")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	bs := NewBreakerSet(3, 2)
	host := "mostly-up.example.com"

	// Failures below the threshold interleaved with successes never open:
	// the breaker counts consecutive failures, not lifetime failures.
	for round := 0; round < 5; round++ {
		bs.Report(host, false)
		if bs.Report(host, false) {
			t.Fatalf("round %d: two failures opened a threshold-3 breaker", round)
		}
		bs.Report(host, true)
		if bs.Open(host) {
			t.Fatalf("round %d: breaker open despite success resets", round)
		}
	}
	bs.Report(host, false)
	bs.Report(host, false)
	if !bs.Report(host, false) {
		t.Fatal("three consecutive failures should finally open")
	}
}

func TestNilCountersSafe(t *testing.T) {
	// Transports built without a counter sink (honeyclient's) must still
	// retry and trip breakers without panicking.
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		errOut(&memnet.ResetError{Host: "n.example.com"}),
		okResp("fine"),
	}}
	tr := New(s, fastPolicy(), nil)
	tr.Breakers = NewBreakerSet(1, 1)
	resp, err := get(t, tr, "http://n.example.com/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	if s.calls != 2 {
		t.Fatalf("calls = %d", s.calls)
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	pol := fastPolicy()
	tr := New(nil, pol, nil)
	// The jitter RNG is keyed by (seed, url, attempt): identical inputs
	// must produce identical waits. We probe via timing-independent state:
	// two transports with the same policy produce the same jitter stream,
	// verified indirectly through the deterministic chaos soak; here we
	// just pin that backoff returns promptly and respects cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if tr.backoff(ctx, pol, "http://x/", 1) {
		t.Fatal("backoff should report cancellation")
	}
	if !tr.backoff(context.Background(), pol, "http://x/", 1) {
		t.Fatal("backoff should complete")
	}
}

func TestReportOutcomeEdgesAndStates(t *testing.T) {
	bs := NewBreakerSet(2, 2)
	host := "edgy.example.com"

	if opened, closed := bs.ReportOutcome(host, false); opened || closed {
		t.Fatalf("first failure: opened=%v closed=%v", opened, closed)
	}
	opened, closed := bs.ReportOutcome(host, false)
	if !opened || closed {
		t.Fatalf("threshold failure: opened=%v closed=%v", opened, closed)
	}
	// Burn the cooldown to reach half-open, then a successful probe must
	// report exactly one close edge.
	bs.Allow(host)
	if !bs.Allow(host) {
		t.Fatal("cooldown spent: probe should be allowed")
	}
	opened, closed = bs.ReportOutcome(host, true)
	if opened || !closed {
		t.Fatalf("successful probe: opened=%v closed=%v", opened, closed)
	}
	// A success on an already-closed circuit is not an edge.
	if _, closed := bs.ReportOutcome(host, true); closed {
		t.Fatal("steady-state success reported a close edge")
	}

	bs.ReportOutcome("another.example.com", false)
	states := bs.States()
	if len(states) != 2 {
		t.Fatalf("States() = %d entries, want 2", len(states))
	}
	if states[0].Host != "another.example.com" || states[1].Host != "edgy.example.com" {
		t.Fatalf("States() not sorted by host: %+v", states)
	}
	if states[1].State != "closed" {
		t.Fatalf("recovered host state = %q", states[1].State)
	}
	var nilSet *BreakerSet
	if nilSet.States() != nil {
		t.Fatal("nil BreakerSet.States() should be nil")
	}
}

func TestTransportEmitsBreakerEvents(t *testing.T) {
	tel := telemetry.New(1)
	tel.Events = telemetry.NewEventLog(32)
	s := &scriptedTripper{outcomes: []func(*http.Request) (*http.Response, error){
		errOut(&memnet.ResetError{Host: "ev.example.com"}),
		okResp("recovered"),
	}}
	pol := fastPolicy()
	pol.MaxAttempts = 1
	tr := New(s, pol, nil)
	tr.Tel = tel
	tr.Breakers = NewBreakerSet(1, 1)

	if _, err := get(t, tr, "http://ev.example.com/"); err == nil {
		t.Fatal("first request should fail and open the circuit")
	}
	// Cooldown 1: the next Allow goes straight to half-open and the probe
	// succeeds, closing the circuit.
	if resp, err := get(t, tr, "http://ev.example.com/"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("probe resp=%v err=%v", resp, err)
	}

	var opens, closes int
	for _, ev := range tel.Events.Snapshot(0) {
		switch ev.Kind {
		case telemetry.EventBreakerOpen:
			opens++
			if ev.Fields["host"] != "ev.example.com" {
				t.Fatalf("open event host = %q", ev.Fields["host"])
			}
		case telemetry.EventBreakerClose:
			closes++
		}
	}
	if opens != 1 || closes != 1 {
		t.Fatalf("events: opens=%d closes=%d, want 1/1", opens, closes)
	}
}
