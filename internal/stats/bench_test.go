package stats

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(30_000, 1.0)
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}

func BenchmarkWeightedSample(b *testing.B) {
	w := make([]float64, 60)
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	dist := NewWeighted(w)
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.Sample(r)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	keys := []string{"entertainment", "news", "adult", "shopping", "sports"}
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Add(keys[i%len(keys)])
	}
}
