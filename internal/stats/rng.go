// Package stats provides deterministic randomness and small statistical
// utilities used throughout the simulation: a seedable PRNG, Zipf and
// categorical samplers, histograms, and summary statistics.
//
// Everything in this package is deterministic given a seed, which is what
// makes the reproduction's experiments repeatable: the same seed always
// yields the same synthetic web, the same ad traffic, and the same measured
// tables and figures.
package stats

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// RNG is a deterministic pseudo-random number generator based on the
// SplitMix64 algorithm. It is intentionally not cryptographically secure;
// it exists to drive simulation decisions reproducibly.
//
// The zero value is a valid generator seeded with 0, but callers normally
// construct one with NewRNG or derive one with Fork.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// NewRNGFromString returns a generator whose seed is derived from s by
// FNV-1a hashing. It is used to derive stable per-entity streams, e.g. one
// stream per ad network keyed by the network's domain.
func NewRNGFromString(s string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(s))
	return &RNG{state: h.Sum64()}
}

// Fork derives an independent generator from r and a label. Two forks with
// different labels produce uncorrelated streams, and forking does not
// disturb r's own stream. This keeps simulation components order-independent:
// adding draws to one component does not shift the randomness of another.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], r.state)
	h.Write(buf[:])
	h.Write([]byte(label))
	return &RNG{state: h.Sum64()}
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// modulo bias is negligible for simulation-sized n versus 2^64.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// ShuffleStrings shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleStrings(s []string) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Pick returns a uniformly chosen element of s. It panics on an empty slice.
func Pick[T any](r *RNG, s []T) T {
	return s[r.Intn(len(s))]
}

// Letters used by RandWord; lowercase only because the simulation generates
// host names and path segments, which are case-insensitive anyway.
const letters = "abcdefghijklmnopqrstuvwxyz"

// RandWord returns a pseudo-random lowercase word with length in [min, max].
func (r *RNG) RandWord(min, max int) string {
	n := min
	if max > min {
		n += r.Intn(max - min + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// RandHex returns n pseudo-random lowercase hex characters.
func (r *RNG) RandHex(n int) string {
	const hexDigits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hexDigits[r.Intn(16)]
	}
	return string(b)
}

// Geometric returns a draw from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// The result is capped at cap to keep simulation loops bounded.
func (r *RNG) Geometric(p float64, cap int) int {
	if p <= 0 {
		return cap
	}
	if p >= 1 {
		return 0
	}
	n := 0
	for n < cap && !r.Bool(p) {
		n++
	}
	return n
}

// Poisson returns a draw from a Poisson distribution with mean lambda,
// using Knuth's multiplication method. Suitable for the small lambdas the
// simulation uses (ad counts per page, refresh variation).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // safety bound; unreachable for sane lambda
			return k
		}
	}
}
