package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter counts occurrences of string keys. It is the workhorse behind the
// paper's categorical breakdowns (ad networks, site categories, TLDs).
// The zero value is ready to use.
type Counter struct {
	counts map[string]int
	total  int
}

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int) {
	if c.counts == nil {
		c.counts = make(map[string]int)
	}
	c.counts[key] += n
	c.total += n
}

// Merge folds another counter in. Merging is commutative, so per-shard
// counters folded in any order agree exactly.
func (c *Counter) Merge(other *Counter) {
	for k, n := range other.counts {
		c.AddN(k, n)
	}
}

// Get returns the count for key.
func (c *Counter) Get(key string) int { return c.counts[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.total }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Share returns key's fraction of the total, or 0 if the counter is empty.
func (c *Counter) Share(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// KV is a key with its count, used for sorted views of a Counter.
type KV struct {
	Key   string
	Count int
}

// Sorted returns all entries sorted by descending count, breaking ties by
// key so that output is deterministic.
func (c *Counter) Sorted() []KV {
	kvs := make([]KV, 0, len(c.counts))
	for k, v := range c.counts {
		kvs = append(kvs, KV{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Count != kvs[j].Count {
			return kvs[i].Count > kvs[j].Count
		}
		return kvs[i].Key < kvs[j].Key
	})
	return kvs
}

// Keys returns all keys in ascending order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IntHist is a histogram over small non-negative integers, used for the
// paper's arbitration chain-length distributions (Figure 5). The zero value
// is ready to use.
type IntHist struct {
	counts map[int]int
	total  int
	max    int
}

// Add records one observation of value v (negative values panic: chain
// lengths and auction counts are never negative).
func (h *IntHist) Add(v int) { h.AddN(v, 1) }

// AddN records n observations of value v.
func (h *IntHist) AddN(v, n int) {
	if v < 0 {
		panic("stats: IntHist.Add with negative value")
	}
	if n <= 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int)
	}
	h.counts[v] += n
	h.total += n
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram in (commutative, like Counter.Merge).
func (h *IntHist) Merge(other *IntHist) {
	for v, n := range other.counts {
		h.AddN(v, n)
	}
}

// Get returns the count at value v.
func (h *IntHist) Get(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *IntHist) Total() int { return h.total }

// Max returns the largest observed value (0 for an empty histogram).
func (h *IntHist) Max() int { return h.max }

// Series returns counts for every value 0..Max() inclusive, suitable for
// plotting a figure's x-axis without gaps.
func (h *IntHist) Series() []int {
	s := make([]int, h.max+1)
	for v, n := range h.counts {
		s[v] = n
	}
	return s
}

// TailShare returns the fraction of observations strictly greater than v.
func (h *IntHist) TailShare(v int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for val, cnt := range h.counts {
		if val > v {
			n += cnt
		}
	}
	return float64(n) / float64(h.total)
}

// Mean returns the arithmetic mean of the observations.
func (h *IntHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for v, n := range h.counts {
		sum += v * n
	}
	return float64(sum) / float64(h.total)
}

// Quantile returns the smallest value v such that at least q of the mass is
// at or below v. q is clamped to [0, 1].
func (h *IntHist) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The epsilon guards against binary float error pushing an exact rank
	// over its ceiling: 0.9 * 10 evaluates to 9.000000000000002, whose bare
	// ceil (10) would skew the quantile one value high.
	need := int(math.Ceil(q*float64(h.total) - 1e-9))
	if need <= 0 {
		need = 1
	}
	cum := 0
	for v := 0; v <= h.max; v++ {
		cum += h.counts[v]
		if cum >= need {
			return v
		}
	}
	return h.max
}

// Summary holds basic descriptive statistics of a float sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		varSum := 0.0
		for _, x := range xs {
			d := x - s.Mean
			varSum += d * d
		}
		s.StdDev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	return s
}

// FormatTable renders rows of (label, count, share) as a fixed-width text
// table, the format used by the cmd tools and EXPERIMENTS.md extracts.
func FormatTable(title string, rows []KV, total int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 0
	for _, r := range rows {
		if len(r.Key) > width {
			width = len(r.Key)
		}
	}
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Count) / float64(total)
		}
		fmt.Fprintf(&b, "  %-*s %10d  %6.2f%%\n", width, r.Key, r.Count, share)
	}
	return b.String()
}
