package stats

import (
	"math"
	"testing"
)

func TestOnlineMatchesSummarize(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	want := Summarize(xs)
	got := o.Summary()
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("Online = %+v, want %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-12 || math.Abs(got.StdDev-want.StdDev) > 1e-12 {
		t.Fatalf("Online moments = (%v, %v), want (%v, %v)", got.Mean, got.StdDev, want.Mean, want.StdDev)
	}
}

func TestOnlineMergeEqualsSequential(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var whole, a, b Online
	for i, x := range xs {
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged = %+v, whole = %+v", a.Summary(), whole.Summary())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 || math.Abs(a.Var()-whole.Var()) > 1e-9 {
		t.Fatalf("merged moments (%v, %v) != whole (%v, %v)", a.Mean(), a.Var(), whole.Mean(), whole.Var())
	}
}

func TestIntMomentsFoldOrderIrrelevant(t *testing.T) {
	vals := []int{2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9}
	var fwd, rev, merged IntMoments
	for _, v := range vals {
		fwd.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		rev.Add(vals[i])
	}
	var a, b IntMoments
	for i, v := range vals {
		if i < len(vals)/2 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	merged = a
	merged.Merge(b)
	if fwd != rev || fwd != merged {
		t.Fatalf("fold order changed exact moments: fwd=%+v rev=%+v merged=%+v", fwd, rev, merged)
	}
	if fwd.N != 13 || fwd.Min != 1 || fwd.Max != 9 {
		t.Fatalf("moments = %+v", fwd)
	}
	if math.Abs(fwd.Mean()-65.0/13.0) > 1e-12 {
		t.Fatalf("mean = %v", fwd.Mean())
	}
}

func TestIntMomentsAddN(t *testing.T) {
	var a, b IntMoments
	for i := 0; i < 5; i++ {
		a.Add(3)
	}
	b.AddN(3, 5)
	if a != b {
		t.Fatalf("AddN(3,5) = %+v, want %+v", b, a)
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	a.Add("x")
	a.AddN("y", 2)
	b.AddN("y", 3)
	b.Add("z")
	a.Merge(&b)
	if a.Get("x") != 1 || a.Get("y") != 5 || a.Get("z") != 1 || a.Total() != 7 {
		t.Fatalf("merged counter = %v (total %d)", a.Sorted(), a.Total())
	}
}

func TestIntHistMergeAndAddN(t *testing.T) {
	var a, b IntHist
	a.AddN(1, 3)
	a.Add(4)
	b.AddN(4, 2)
	b.Add(7)
	a.Merge(&b)
	if a.Total() != 7 || a.Get(1) != 3 || a.Get(4) != 3 || a.Get(7) != 1 || a.Max() != 7 {
		t.Fatalf("merged hist series = %v", a.Series())
	}
}
