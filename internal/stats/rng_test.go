package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestNewRNGFromStringStable(t *testing.T) {
	a := NewRNGFromString("ads.example.com")
	b := NewRNGFromString("ads.example.com")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same string seed produced different streams")
	}
	c := NewRNGFromString("ads.example.org")
	d := NewRNGFromString("ads.example.com")
	if c.Uint64() == d.Uint64() {
		t.Fatal("different string seeds produced identical first draw")
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork("alpha")
	f2 := r.Fork("beta")
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different labels produced identical first draw")
	}
	// Forking must not advance the parent stream.
	r2 := NewRNG(7)
	if r.Uint64() != r2.Uint64() {
		t.Fatal("Fork advanced the parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	if err := quick.Check(func(_ uint64) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %f, want ~0.5", mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %f", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(19)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleStringsPreservesMultiset(t *testing.T) {
	r := NewRNG(29)
	s := []string{"a", "b", "c", "d", "e", "a"}
	orig := map[string]int{}
	for _, v := range s {
		orig[v]++
	}
	r.ShuffleStrings(s)
	got := map[string]int{}
	for _, v := range s {
		got[v]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("shuffle changed multiset: %v", got)
		}
	}
}

func TestRandWordLength(t *testing.T) {
	r := NewRNG(31)
	for i := 0; i < 1000; i++ {
		w := r.RandWord(3, 9)
		if len(w) < 3 || len(w) > 9 {
			t.Fatalf("RandWord(3,9) length %d", len(w))
		}
		for _, c := range w {
			if c < 'a' || c > 'z' {
				t.Fatalf("RandWord produced non-letter %q", c)
			}
		}
	}
}

func TestRandHex(t *testing.T) {
	r := NewRNG(37)
	h := r.RandHex(32)
	if len(h) != 32 {
		t.Fatalf("RandHex(32) length %d", len(h))
	}
	for _, c := range h {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("RandHex produced %q", c)
		}
	}
}

func TestGeometricBounds(t *testing.T) {
	r := NewRNG(41)
	for i := 0; i < 1000; i++ {
		v := r.Geometric(0.5, 10)
		if v < 0 || v > 10 {
			t.Fatalf("Geometric out of bounds: %d", v)
		}
	}
	if v := r.Geometric(0, 5); v != 5 {
		t.Fatalf("Geometric(0, 5) = %d, want cap", v)
	}
	if v := r.Geometric(1, 5); v != 0 {
		t.Fatalf("Geometric(1, 5) = %d, want 0", v)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(43)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5, 1000)
	}
	mean := float64(sum) / n
	// Mean of geometric (failures before success) with p=0.5 is 1.
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("geometric mean = %f, want ~1", mean)
	}
}

func TestPoisson(t *testing.T) {
	r := NewRNG(47)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Poisson(3.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("poisson mean = %f, want ~3.5", mean)
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(53)
	s := []string{"x", "y", "z"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, s)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick over 100 draws covered %d/3 values", len(seen))
	}
}
