package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Total() != 0 || c.Len() != 0 {
		t.Fatal("zero Counter not empty")
	}
	c.Add("a")
	c.Add("a")
	c.AddN("b", 3)
	if c.Get("a") != 2 || c.Get("b") != 3 || c.Get("missing") != 0 {
		t.Fatalf("counts wrong: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if c.Total() != 5 || c.Len() != 2 {
		t.Fatalf("total=%d len=%d", c.Total(), c.Len())
	}
	if got := c.Share("b"); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("Share(b) = %f", got)
	}
}

func TestCounterSortedDeterministic(t *testing.T) {
	var c Counter
	c.AddN("x", 5)
	c.AddN("a", 5)
	c.AddN("big", 10)
	got := c.Sorted()
	if got[0].Key != "big" || got[1].Key != "a" || got[2].Key != "x" {
		t.Fatalf("sorted order wrong: %v", got)
	}
}

func TestCounterKeysSorted(t *testing.T) {
	var c Counter
	for _, k := range []string{"zeta", "alpha", "mid"} {
		c.Add(k)
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[2] != "zeta" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestCounterShareEmpty(t *testing.T) {
	var c Counter
	if c.Share("anything") != 0 {
		t.Fatal("empty counter share should be 0")
	}
}

func TestIntHistBasics(t *testing.T) {
	var h IntHist
	for _, v := range []int{1, 1, 2, 5, 0} {
		h.Add(v)
	}
	if h.Total() != 5 || h.Max() != 5 {
		t.Fatalf("total=%d max=%d", h.Total(), h.Max())
	}
	series := h.Series()
	want := []int{1, 2, 1, 0, 0, 1}
	if len(series) != len(want) {
		t.Fatalf("series len = %d", len(series))
	}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("series[%d] = %d, want %d", i, series[i], want[i])
		}
	}
}

func TestIntHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var h IntHist
	h.Add(-1)
}

func TestIntHistTailShare(t *testing.T) {
	var h IntHist
	for v := 0; v < 10; v++ {
		h.Add(v)
	}
	if got := h.TailShare(7); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("TailShare(7) = %f", got)
	}
	if h.TailShare(100) != 0 {
		t.Fatal("TailShare beyond max should be 0")
	}
}

func TestIntHistMeanQuantile(t *testing.T) {
	var h IntHist
	for _, v := range []int{1, 2, 3, 4} {
		h.Add(v)
	}
	if got := h.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Mean = %f", got)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("Quantile(0.5) = %d", q)
	}
	if q := h.Quantile(1.0); q != 4 {
		t.Fatalf("Quantile(1.0) = %d", q)
	}
	if q := h.Quantile(-1); q != 1 {
		t.Fatalf("Quantile(-1) = %d", q)
	}
}

func TestIntHistQuantileEdges(t *testing.T) {
	var empty IntHist
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile(0.5) = %d, want 0", q)
	}

	var one IntHist
	one.Add(7)
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); got != 7 {
			t.Fatalf("single-value Quantile(%g) = %d, want 7", q, got)
		}
	}

	var h IntHist
	for _, v := range []int{3, 1, 4, 1, 5} {
		h.Add(v)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %d, want the minimum 1", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("Quantile(1) = %d, want the maximum 5", q)
	}
	if q := h.Quantile(2.5); q != 5 {
		t.Fatalf("Quantile over 1 should clamp, got %d", q)
	}
}

// TestIntHistQuantileFloatBoundary is the regression test for the rank
// rounding bug: 0.9 * 10 evaluates to 9.000000000000002 in binary floating
// point, so a bare ceil demanded 10 observations and returned the maximum
// instead of the 9th-ranked value.
func TestIntHistQuantileFloatBoundary(t *testing.T) {
	var h IntHist
	for v := 0; v < 10; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.9); q != 8 {
		t.Fatalf("Quantile(0.9) over 0..9 = %d, want 8 (the 9th value)", q)
	}
	if q := h.Quantile(0.3); q != 2 {
		t.Fatalf("Quantile(0.3) over 0..9 = %d, want 2 (the 3rd value)", q)
	}
	if q := h.Quantile(0.7); q != 6 {
		t.Fatalf("Quantile(0.7) over 0..9 = %d, want 6 (the 7th value)", q)
	}
}

func TestIntHistQuantileMonotone(t *testing.T) {
	r := NewRNG(99)
	var h IntHist
	for i := 0; i < 500; i++ {
		h.Add(r.Intn(30))
	}
	if err := quick.Check(func(a, b uint8) bool {
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntHistSeriesSumsToTotal(t *testing.T) {
	r := NewRNG(101)
	if err := quick.Check(func(_ uint8) bool {
		var h IntHist
		n := r.Intn(200) + 1
		for i := 0; i < n; i++ {
			h.Add(r.Intn(20))
		}
		sum := 0
		for _, c := range h.Series() {
			sum += c
		}
		return sum == h.Total()
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of that classic dataset is ~2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Fatalf("stddev = %f", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty Summarize should be zero")
	}
}

func TestSummarizeEdges(t *testing.T) {
	if z := Summarize([]float64{}); z != (Summary{}) {
		t.Fatalf("empty slice should yield zero Summary, got %+v", z)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single-value summary = %+v", s)
	}
	if s.StdDev != 0 {
		t.Fatalf("single-value stddev = %f, want 0 (undefined sample variance)", s.StdDev)
	}
	neg := Summarize([]float64{-2, -8, -5})
	if neg.Min != -8 || neg.Max != -2 || neg.Mean != -5 {
		t.Fatalf("negative-value summary = %+v", neg)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable("Hdr", []KV{{"aa", 3}, {"b", 1}}, 4)
	if !strings.Contains(out, "Hdr") || !strings.Contains(out, "75.00%") || !strings.Contains(out, "25.00%") {
		t.Fatalf("table output:\n%s", out)
	}
	// Zero total must not divide by zero.
	out = FormatTable("Hdr", []KV{{"a", 1}}, 0)
	if !strings.Contains(out, "0.00%") {
		t.Fatalf("zero-total table output:\n%s", out)
	}
}
