package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks from a Zipf(s) distribution over [0, n). It reproduces
// the heavy-tailed popularity of websites and ad networks: rank 0 is the most
// popular item, and popularity falls off as 1/(rank+1)^s.
//
// The implementation precomputes the cumulative mass function and samples by
// binary search, which is fast enough for the corpus sizes this repository
// simulates and — unlike rejection samplers — is exactly reproducible across
// runs for a given RNG stream.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (> 0).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("stats: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one rank in [0, N()).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Mass returns the probability of rank i.
func (z *Zipf) Mass(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Weighted samples indices in proportion to fixed non-negative weights.
// It is the simulation's categorical distribution: site categories, TLD
// shares, ad network market shares, and so on.
type Weighted struct {
	cdf   []float64
	total float64
}

// NewWeighted builds a sampler over len(weights) outcomes. Negative weights
// panic; an all-zero weight vector panics because there is nothing to sample.
func NewWeighted(weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("stats: NewWeighted with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("stats: NewWeighted weight %d is invalid (%v)", i, w))
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("stats: NewWeighted with all-zero weights")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf, total: sum}
}

// Sample draws one outcome index.
func (w *Weighted) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(w.cdf, u)
}

// N returns the number of outcomes.
func (w *Weighted) N() int { return len(w.cdf) }

// Prob returns the normalized probability of outcome i.
func (w *Weighted) Prob(i int) float64 {
	if i < 0 || i >= len(w.cdf) {
		return 0
	}
	if i == 0 {
		return w.cdf[0]
	}
	return w.cdf[i] - w.cdf[i-1]
}
