package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfHeadHeavier(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := NewRNG(1)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("zipf not monotone head-heavy: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
}

func TestZipfMassSumsToOne(t *testing.T) {
	z := NewZipf(200, 1.2)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Mass(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("zipf masses sum to %f", sum)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	z := NewZipf(50, 0.8)
	r := NewRNG(2)
	if err := quick.Check(func(_ uint8) bool {
		v := z.Sample(r)
		return v >= 0 && v < 50
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {10, 0}, {10, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %f) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestWeightedProportions(t *testing.T) {
	w := NewWeighted([]float64{1, 2, 7})
	r := NewRNG(3)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("outcome %d share = %f, want %f", i, got, want)
		}
	}
}

func TestWeightedZeroWeightNeverSampled(t *testing.T) {
	w := NewWeighted([]float64{0, 1, 0, 1})
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := w.Sample(r)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestWeightedProbSumsToOne(t *testing.T) {
	w := NewWeighted([]float64{3, 0.5, 2, 9, 0.01})
	sum := 0.0
	for i := 0; i < w.N(); i++ {
		sum += w.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weighted probs sum to %f", sum)
	}
}

func TestWeightedPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {1, -1}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeighted(%v) did not panic", weights)
				}
			}()
			NewWeighted(weights)
		}()
	}
}

func TestWeightedProbOutOfRange(t *testing.T) {
	w := NewWeighted([]float64{1, 1})
	if w.Prob(-1) != 0 || w.Prob(2) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}
