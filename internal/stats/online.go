package stats

import "math"

// Online is a single-pass (Welford) summary of a float stream: the streaming
// service uses it to summarize operational series — queue depths, RSS
// samples, latencies — without retaining observations, keeping memory flat
// no matter how long the stream runs. The zero value is ready to use.
//
// Floating-point accumulation is order-sensitive in the last bits, so Online
// is for operational reporting; deterministic study statistics use
// IntMoments, whose integer accumulators fold identically in any order.
type Online struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation in.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge folds another summary in (Chan's parallel-variance combination).
func (o *Online) Merge(b Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = b
		return
	}
	n := o.n + b.n
	d := b.mean - o.mean
	o.m2 += b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	o.mean += d * float64(b.n) / float64(n)
	o.n = n
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
}

// Count returns how many observations have been folded in.
func (o *Online) Count() int64 { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Summary materializes the stats.Summary view of the stream so far.
func (o *Online) Summary() Summary {
	return Summary{N: int(o.n), Mean: o.Mean(), StdDev: o.StdDev(), Min: o.min, Max: o.max}
}

// IntMoments accumulates exact integer moments of a small-integer stream
// (chain lengths, frame counts). Every accumulator is integer arithmetic, so
// folds commute exactly: any interleaving — including a journal replay after
// a crash — produces bit-identical state, which is what the streaming
// service's byte-identical-summary invariant rests on. Fields are exported
// for stable JSON checkpointing. The zero value is ready to use.
type IntMoments struct {
	N     int64 `json:"n"`
	Sum   int64 `json:"sum"`
	SumSq int64 `json:"sumsq"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// Add folds one observation in.
func (m *IntMoments) Add(v int) { m.AddN(v, 1) }

// AddN folds n observations of value v in.
func (m *IntMoments) AddN(v int, n int) {
	if n <= 0 {
		return
	}
	x := int64(v)
	if m.N == 0 || x < m.Min {
		m.Min = x
	}
	if m.N == 0 || x > m.Max {
		m.Max = x
	}
	m.N += int64(n)
	m.Sum += x * int64(n)
	m.SumSq += x * x * int64(n)
}

// Merge folds another moment set in.
func (m *IntMoments) Merge(b IntMoments) {
	if b.N == 0 {
		return
	}
	if m.N == 0 {
		*m = b
		return
	}
	m.N += b.N
	m.Sum += b.Sum
	m.SumSq += b.SumSq
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
}

// Mean returns Sum/N. The division happens once at read time over exact
// integer accumulators, so it is identical no matter how the stream was
// folded.
func (m *IntMoments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.Sum) / float64(m.N)
}

// Var returns the sample variance from the exact moments.
func (m *IntMoments) Var() float64 {
	if m.N < 2 {
		return 0
	}
	n := float64(m.N)
	mean := m.Mean()
	return (float64(m.SumSq) - n*mean*mean) / (n - 1)
}
