package avscan

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestCachedScanMatchesUncached asserts the cached scanner returns reports
// deep-equal to a cache-less scanner, and repeated bodies are hits.
func TestCachedScanMatchesUncached(t *testing.T) {
	plain := New(7)
	cached := New(7)
	cached.EnableCache(0, nil)

	samples := [][]byte{
		[]byte("MZ EVIL:DriveBy.alpha;payload-bytes"),
		[]byte("FWS EVILSWF:Flash.beta;swf-bytes"),
		[]byte("plain clean body"),
	}
	for pass := 0; pass < 2; pass++ {
		for i, data := range samples {
			want := plain.Scan(data)
			got := cached.Scan(data)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d sample %d: cached report diverged", pass, i)
			}
		}
	}
	st, ok := cached.CacheStats()
	if !ok || st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCachedScanConcurrent hammers one body from many goroutines under
// -race: all callers share a single scan.
func TestCachedScanConcurrent(t *testing.T) {
	s := New(7)
	s.EnableCache(0, nil)
	data := []byte("MZ EVIL:Storm.gamma;same-body")

	const workers = 8
	reports := make([]*Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reports[w] = s.Scan(data)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if reports[w] != reports[0] {
			t.Fatalf("worker %d got a different report pointer", w)
		}
	}
	if st, _ := s.CacheStats(); st.Stores != 1 {
		t.Fatalf("body scanned %d times", st.Stores)
	}
}

// TestCacheDistinguishesBodies guards against hash-key collisions across
// distinct payloads with equal length.
func TestCacheDistinguishesBodies(t *testing.T) {
	s := New(7)
	s.EnableCache(0, nil)
	a := s.Scan([]byte("MZ EVIL:One.a;xxxxxxxx"))
	b := s.Scan([]byte("MZ EVIL:Two.b;yyyyyyyy"))
	if a.SHA256 == b.SHA256 {
		t.Fatal("distinct bodies share a report")
	}
	if got := fmt.Sprintf("%v", a.Verdicts); got == fmt.Sprintf("%v", b.Verdicts) && a == b {
		t.Fatal("cache conflated distinct bodies")
	}
}
