package avscan

import "testing"

// BenchmarkScanCached pins the cached re-scan path: one content hash, one
// shared hex string, no per-verdict formatting.
func BenchmarkScanCached(b *testing.B) {
	s := New(0xfeed)
	s.EnableCache(256, nil)
	body := []byte("GIF89a benign creative body for the scanner to hash")
	s.Scan(body) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Scan(body); r == nil {
			b.Fatal("nil report")
		}
	}
}
