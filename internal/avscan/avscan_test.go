package avscan

import (
	"bytes"
	"testing"
	"testing/quick"
)

func evilEXE() []byte {
	return []byte("MZ\x90\x00\x03EVIL:cmp-00042:drive-by;FILLERFILLERFILLER")
}

func evilSWF() []byte {
	return []byte("FWS\x0aEVILSWF:cmp-00099;FILLER")
}

func cleanEXE() []byte {
	return []byte("MZ\x90\x00\x03CLEANINSTALLER:flash;FILLERFILLER")
}

func TestEngineCount(t *testing.T) {
	s := New(1)
	if len(s.Engines) != NumEngines {
		t.Fatalf("engines = %d", len(s.Engines))
	}
	for _, e := range s.Engines {
		if e.DetectRate <= 0 || e.DetectRate > 1 {
			t.Fatalf("engine %s rate %f", e.Name, e.DetectRate)
		}
	}
}

func TestMaliciousEXEDetected(t *testing.T) {
	s := New(1)
	r := s.Scan(evilEXE())
	if r.Kind != KindPE {
		t.Fatalf("kind = %s", r.Kind)
	}
	if !r.Malicious(s.Threshold) {
		t.Fatalf("positives = %d, marked payload must cross threshold", r.Positives())
	}
	// The strong majority of engines should catch it.
	if r.Positives() < NumEngines/2 {
		t.Fatalf("positives = %d, want majority", r.Positives())
	}
	// Signature carries the campaign marker.
	found := false
	for _, v := range r.Verdicts {
		if v.Malicious && v.Signature != "" {
			if !bytes.Contains([]byte(v.Signature), []byte("cmp-00042")) {
				t.Fatalf("signature = %q", v.Signature)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no named signature")
	}
}

func TestMaliciousSWFDetected(t *testing.T) {
	s := New(1)
	r := s.Scan(evilSWF())
	if r.Kind != KindFlash {
		t.Fatalf("kind = %s", r.Kind)
	}
	if !r.Malicious(s.Threshold) {
		t.Fatal("marked flash must be detected")
	}
}

func TestCleanFileBelowThreshold(t *testing.T) {
	s := New(1)
	r := s.Scan(cleanEXE())
	if r.Malicious(s.Threshold) {
		t.Fatalf("clean file flagged with %d positives", r.Positives())
	}
	// FP rate is 0.1% per engine: expect at most 1-2 stray positives.
	if r.Positives() > 2 {
		t.Fatalf("positives = %d on a clean file", r.Positives())
	}
}

func TestScanDeterministic(t *testing.T) {
	s := New(1)
	a := s.Scan(evilEXE())
	b := s.Scan(evilEXE())
	if a.Positives() != b.Positives() {
		t.Fatal("repeated scans disagree")
	}
	for i := range a.Verdicts {
		if a.Verdicts[i].Malicious != b.Verdicts[i].Malicious {
			t.Fatalf("engine %s flip-flopped", a.Verdicts[i].Engine)
		}
	}
}

func TestEnginesDisagree(t *testing.T) {
	s := New(1)
	r := s.Scan(evilEXE())
	// Not all vendors recognize the same malware (the paper's point for
	// using 51 of them): at least one engine must miss.
	if r.Positives() == NumEngines {
		t.Fatal("all engines agreeing is unrealistic")
	}
}

func TestClassify(t *testing.T) {
	for data, want := range map[string]SampleKind{
		"MZ\x90":  KindPE,
		"FWS\x01": KindFlash,
		"CWS\x01": KindFlash,
		"\x89PNG": KindUnknown,
		"":        KindUnknown,
	} {
		if got := classify([]byte(data)); got != want {
			t.Errorf("classify(%q) = %s, want %s", data, got, want)
		}
	}
}

func TestReportFields(t *testing.T) {
	s := New(1)
	data := evilEXE()
	r := s.Scan(data)
	if len(r.SHA256) != 64 {
		t.Fatalf("sha = %q", r.SHA256)
	}
	if r.Size != len(data) {
		t.Fatalf("size = %d", r.Size)
	}
	if len(r.Verdicts) != NumEngines {
		t.Fatalf("verdicts = %d", len(r.Verdicts))
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("cmp-1:drive-by;<x>"); got != "cmp-1drive-byx" {
		t.Fatalf("sanitize = %q", got)
	}
}

// Property: scanning never panics and clean random data essentially never
// crosses the threshold.
func TestScanFuzzProperty(t *testing.T) {
	s := New(2)
	f := func(raw []byte) bool {
		r := s.Scan(raw)
		if bytes.Contains(raw, markerEXE) || bytes.Contains(raw, markerSWF) {
			return true // marked data may legitimately be flagged
		}
		return r.Positives() <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectionRateTiers(t *testing.T) {
	s := New(3)
	top, tail := 0.0, 0.0
	for i, e := range s.Engines {
		if i < 10 {
			top += e.DetectRate
		}
		if i >= 35 {
			tail += e.DetectRate
		}
	}
	if top/10 <= tail/float64(NumEngines-35) {
		t.Fatal("top engines should outperform the tail")
	}
}
