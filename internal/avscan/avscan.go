// Package avscan is the reproduction's VirusTotal (§3.2.3): a scanning
// service that runs every submitted file through 51 antivirus engines and
// reports each engine's verdict.
//
// Engines differ in quality, exactly as the paper notes ("not all vendors
// can recognize the same malware"): each engine has a detection rate, and
// whether a given engine flags a given sample is a deterministic function
// of (engine, sample hash), so repeated scans agree with themselves.
// Detection keys off malware markers the payload generator embeds
// ("EVIL:" / "EVILSWF:"); clean files draw only a tiny false-positive rate.
package avscan

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"madave/internal/cachex"
	"madave/internal/stats"
	"madave/internal/telemetry"
)

// NumEngines is the number of antivirus engines (paper: 51).
const NumEngines = 51

// DefaultThreshold is the minimum number of engine detections for a
// sample to be considered malicious (inclusive).
const DefaultThreshold = 4

// Engine is one simulated antivirus product.
type Engine struct {
	Name string
	// DetectRate is the probability the engine recognizes a marked
	// malicious sample.
	DetectRate float64
	// FPRate is the probability the engine wrongly flags a clean sample.
	FPRate float64
}

// Verdict is one engine's result for one sample.
type Verdict struct {
	Engine    string
	Malicious bool
	Signature string // named detection when Malicious
}

// Report is the scan outcome across all engines.
type Report struct {
	SHA256   string
	Size     int
	Kind     SampleKind
	Verdicts []Verdict
}

// SampleKind is the file type the scanner inferred.
type SampleKind string

// Sample kinds.
const (
	KindPE      SampleKind = "pe-executable"
	KindFlash   SampleKind = "flash"
	KindUnknown SampleKind = "unknown"
)

// Positives counts engines that flagged the sample.
func (r *Report) Positives() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Malicious {
			n++
		}
	}
	return n
}

// Malicious applies the threshold rule.
func (r *Report) Malicious(threshold int) bool {
	return r.Positives() >= threshold
}

// Scanner is the multi-engine scanning service.
type Scanner struct {
	Engines   []Engine
	Threshold int
	// cache memoizes reports by content hash: every verdict is a pure
	// function of (engine set, sample bytes), so a cached report is
	// byte-identical to a rescan. Nil means scan every submission.
	cache *cachex.Cache[string, *Report]
}

// DefaultCacheEntries sizes the report cache; payload bodies are constant
// per campaign, so distinct hashes number in the hundreds.
const DefaultCacheEntries = 1 << 12

// EnableCache turns on content-hash memoization of scan reports.
func (s *Scanner) EnableCache(entries int, tel *telemetry.Set) {
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	s.cache = cachex.New[string, *Report](cachex.Config{Capacity: entries, Name: "avscan", Tel: tel})
}

// CacheStats reports the scan cache counters; ok is false when disabled.
func (s *Scanner) CacheStats() (st cachex.Stats, ok bool) {
	if s.cache == nil {
		return cachex.Stats{}, false
	}
	return s.cache.Stats(), true
}

// New returns a scanner with 51 engines whose detection rates span the
// realistic range: a top tier that catches nearly everything, a broad
// middle, and a weak tail.
func New(seed uint64) *Scanner {
	rng := stats.NewRNG(seed).Fork("avscan")
	s := &Scanner{Threshold: DefaultThreshold}
	for i := 0; i < NumEngines; i++ {
		var rate float64
		switch {
		case i < 10:
			rate = 0.93 + 0.06*rng.Float64()
		case i < 35:
			rate = 0.65 + 0.25*rng.Float64()
		default:
			rate = 0.25 + 0.35*rng.Float64()
		}
		s.Engines = append(s.Engines, Engine{
			Name:       fmt.Sprintf("av-%02d", i),
			DetectRate: rate,
			FPRate:     0.001,
		})
	}
	return s
}

// markers the payload generator embeds in malicious files.
var (
	markerEXE = []byte("EVIL:")
	markerSWF = []byte("EVILSWF:")
)

// Scan runs every engine over the sample. With the cache enabled,
// identical payload bodies are scanned once and concurrent submissions of
// the same body coalesce into a single engine sweep.
func (s *Scanner) Scan(data []byte) *Report {
	sum := sha256.Sum256(data)
	// Hex-encode once via a stack buffer; the one string allocated here is
	// shared by the cache key and the report's SHA256 field.
	var hexBuf [2 * sha256.Size]byte
	hex.Encode(hexBuf[:], sum[:])
	hexSum := string(hexBuf[:])
	if s.cache == nil {
		return s.scan(data, sum, hexSum)
	}
	r, _ := s.cache.GetOrLoad(hexSum, func() (*Report, error) {
		return s.scan(data, sum, hexSum), nil
	})
	return r
}

func (s *Scanner) scan(data []byte, sum [sha256.Size]byte, hexSum string) *Report {
	r := &Report{
		SHA256: hexSum,
		Size:   len(data),
		Kind:   classify(data),
	}
	dirty := bytes.Contains(data, markerEXE) || bytes.Contains(data, markerSWF)
	sig := extractSignature(data)
	for _, e := range s.Engines {
		v := Verdict{Engine: e.Name}
		p := e.FPRate
		if dirty {
			p = e.DetectRate
		}
		if deterministicBool(e.Name, sum[:], p) {
			v.Malicious = true
			if dirty {
				v.Signature = sig
			} else {
				v.Signature = "Heur.Generic"
			}
		}
		r.Verdicts = append(r.Verdicts, v)
	}
	return r
}

// classify infers the sample kind from magic bytes.
func classify(data []byte) SampleKind {
	switch {
	case bytes.HasPrefix(data, []byte("MZ")):
		return KindPE
	case bytes.HasPrefix(data, []byte("FWS")) || bytes.HasPrefix(data, []byte("CWS")):
		return KindFlash
	default:
		return KindUnknown
	}
}

// extractSignature derives a detection name from the embedded marker.
func extractSignature(data []byte) string {
	for _, m := range [][]byte{markerSWF, markerEXE} {
		if i := bytes.Index(data, m); i >= 0 {
			end := i + len(m)
			for end < len(data) && data[end] != ';' && end-i < 64 {
				end++
			}
			return "Trojan.AdPayload." + sanitize(string(data[i+len(m):end]))
		}
	}
	return ""
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '.' {
			out = append(out, c)
		}
	}
	return string(out)
}

// deterministicBool returns a stable pseudo-random bool with probability p
// keyed on (engine, sample hash): the same engine always gives the same
// verdict for the same file.
func deterministicBool(engine string, hash []byte, p float64) bool {
	rng := stats.NewRNGFromString(engine + ":" + string(hash))
	return rng.Bool(p)
}
