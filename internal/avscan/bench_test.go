package avscan

import (
	"strings"
	"testing"
)

func BenchmarkScanMalicious(b *testing.B) {
	s := New(1)
	payload := []byte("MZ\x90\x00\x03EVIL:cmp-00042:drive-by;" + strings.Repeat("fill", 1024))
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		r := s.Scan(payload)
		if !r.Malicious(s.Threshold) {
			b.Fatal("missed")
		}
	}
}

func BenchmarkScanClean(b *testing.B) {
	s := New(1)
	payload := []byte("MZ\x90\x00\x03CLEANINSTALLER:flash;" + strings.Repeat("fill", 1024))
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		r := s.Scan(payload)
		if r.Malicious(s.Threshold) {
			b.Fatal("false positive")
		}
	}
}
