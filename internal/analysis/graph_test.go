package analysis

import (
	"testing"

	"madave/internal/netcap"
)

func tx(url, host, referer string, status int, location string) netcap.Transaction {
	return netcap.Transaction{URL: url, Host: host, Referer: referer, Status: status, Location: location}
}

func TestBuildHostGraphEdges(t *testing.T) {
	txs := []netcap.Transaction{
		// pub page -> frame via referer
		tx("http://www.pub.com/", "www.pub.com", "", 200, ""),
		tx("http://adserv.a.com/serve", "adserv.a.com", "http://www.pub.com/", 302, "http://adserv.b.com/serve"),
		tx("http://adserv.b.com/serve", "adserv.b.com", "http://adserv.a.com/serve", 200, ""),
		tx("http://cdn.camp.com/banner.png", "cdn.camp.com", "http://adserv.b.com/serve", 200, ""),
	}
	g := BuildHostGraph(txs)
	if g.NumHosts() != 4 {
		t.Fatalf("hosts = %d", g.NumHosts())
	}
	// Expected edges: pub->a (referer), a->b (redirect + referer), b->cdn.
	if g.Edges["www.pub.com"]["adserv.a.com"] != 1 {
		t.Fatalf("pub->a edge: %+v", g.Edges["www.pub.com"])
	}
	if g.Edges["adserv.a.com"]["adserv.b.com"] != 2 {
		t.Fatalf("a->b edge count = %d (redirect + referer)", g.Edges["adserv.a.com"]["adserv.b.com"])
	}
	if g.Edges["adserv.b.com"]["cdn.camp.com"] != 1 {
		t.Fatal("b->cdn edge missing")
	}
	if g.OutDegree("adserv.a.com") != 1 {
		t.Fatalf("fanout = %d", g.OutDegree("adserv.a.com"))
	}
}

func TestGraphReachabilityAndPaths(t *testing.T) {
	txs := []netcap.Transaction{
		tx("http://a.com/", "a.com", "", 302, "http://b.com/"),
		tx("http://b.com/", "b.com", "", 302, "http://c.com/"),
		tx("http://c.com/", "c.com", "", 200, ""),
		tx("http://x.com/", "x.com", "", 302, "http://c.com/"),
	}
	g := BuildHostGraph(txs)
	reach := g.ReachableFrom("a.com")
	if len(reach) != 2 || reach[0] != "b.com" || reach[1] != "c.com" {
		t.Fatalf("reach = %v", reach)
	}
	path := g.ShortestPath("a.com", "c.com")
	if len(path) != 3 || path[0] != "a.com" || path[2] != "c.com" {
		t.Fatalf("path = %v", path)
	}
	if g.ShortestPath("c.com", "a.com") != nil {
		t.Fatal("reverse path should not exist")
	}
	if p := g.ShortestPath("a.com", "a.com"); len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestGraphSelfAndEmptyEdgesIgnored(t *testing.T) {
	txs := []netcap.Transaction{
		tx("http://a.com/x", "a.com", "http://a.com/", 200, ""), // self referer
		tx("http://b.com/", "b.com", "", 302, ""),               // no location
	}
	g := BuildHostGraph(txs)
	if g.NumEdges() != 0 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}
