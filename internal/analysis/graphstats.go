package analysis

import (
	"fmt"
	"sort"
	"strings"

	"madave/internal/corpus"
	"madave/internal/oracle"
)

// GraphStats is the flow-graph oracle's section of the study report: which
// structural signals fired and where, aggregated per serving network (the
// arbitration chain's final host, same attribution as Figures 1/2). It is
// strictly additive — Analyze fills it only when the classified result
// carries graph verdicts, and no base table reads from it, so graph-on and
// graph-off reports render byte-identically everywhere else.
type GraphStats struct {
	// Scanned is the number of ads that carried a flow-graph summary;
	// Flagged how many the graph classifier called malicious.
	Scanned int
	Flagged int
	// Signals counts how often each structural signal fired.
	Signals []GraphSignalRow
	// Networks lists the networks with at least one graph-flagged ad,
	// sorted by descending flagged count (then name).
	Networks []GraphNetworkRow
}

// GraphSignalRow is one structural signal's tally.
type GraphSignalRow struct {
	Signal string
	Count  int
}

// GraphNetworkRow is one serving network's flow-graph view — the
// arbitration-chain table the README quick-start prints.
type GraphNetworkRow struct {
	Network string
	// Ads is the network's total ad volume; Flagged its graph verdicts.
	Ads     int
	Flagged int
	// MaxChain / MeanChain summarize the graph-measured arbitration-chain
	// depth (redirect hops) over the network's flagged ads.
	MaxChain  int
	MeanChain float64
}

// AnalyzeGraph computes the flow-graph section; nil when the result carries
// no graph verdicts (the graph oracle was off).
func AnalyzeGraph(corp *corpus.Corpus, res *oracle.Result) *GraphStats {
	if res == nil || res.GraphScanned == 0 {
		return nil
	}
	gs := &GraphStats{Scanned: res.GraphScanned, Flagged: len(res.GraphFindings)}

	byHash := make(map[string]*oracle.GraphFinding, len(res.GraphFindings))
	signals := map[string]int{}
	for i := range res.GraphFindings {
		gf := &res.GraphFindings[i]
		byHash[gf.AdHash] = gf
		for _, s := range gf.Signals {
			signals[s]++
		}
	}
	for s, n := range signals {
		gs.Signals = append(gs.Signals, GraphSignalRow{Signal: s, Count: n})
	}
	sort.Slice(gs.Signals, func(i, j int) bool {
		if gs.Signals[i].Count != gs.Signals[j].Count {
			return gs.Signals[i].Count > gs.Signals[j].Count
		}
		return gs.Signals[i].Signal < gs.Signals[j].Signal
	})

	type agg struct {
		ads, flagged, chainSum, chainMax int
	}
	nets := map[string]*agg{}
	for _, ad := range corp.All() {
		net := servingNetwork(ad)
		a := nets[net]
		if a == nil {
			a = &agg{}
			nets[net] = a
		}
		a.ads++
		gf, ok := byHash[ad.Hash]
		if !ok {
			continue
		}
		a.flagged++
		a.chainSum += gf.Features.ChainDepth
		if gf.Features.ChainDepth > a.chainMax {
			a.chainMax = gf.Features.ChainDepth
		}
	}
	for name, a := range nets {
		if a.flagged == 0 {
			continue
		}
		gs.Networks = append(gs.Networks, GraphNetworkRow{
			Network:   name,
			Ads:       a.ads,
			Flagged:   a.flagged,
			MaxChain:  a.chainMax,
			MeanChain: float64(a.chainSum) / float64(a.flagged),
		})
	}
	sort.Slice(gs.Networks, func(i, j int) bool {
		if gs.Networks[i].Flagged != gs.Networks[j].Flagged {
			return gs.Networks[i].Flagged > gs.Networks[j].Flagged
		}
		return gs.Networks[i].Network < gs.Networks[j].Network
	})
	return gs
}

// RenderText renders the flow-graph section in the fixed-width style of
// Report.RenderText. Callers print it after the base report; keeping it out
// of RenderText preserves byte-identity of the base rendering with the
// graph oracle on or off.
func (g *GraphStats) RenderText() string {
	if g == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Flow-graph oracle: %d of %d ads flagged\n", g.Flagged, g.Scanned)
	b.WriteString("  signals:\n")
	for _, row := range g.Signals {
		fmt.Fprintf(&b, "    %-22s %6d\n", row.Signal, row.Count)
	}
	b.WriteString("  per-network arbitration chains (graph-measured):\n")
	for i, row := range g.Networks {
		if i >= 15 {
			fmt.Fprintf(&b, "    ... %d more networks\n", len(g.Networks)-i)
			break
		}
		fmt.Fprintf(&b, "    %-34s %5d ads  %4d flagged  chain max %2d mean %.2f\n",
			row.Network, row.Ads, row.Flagged, row.MaxChain, row.MeanChain)
	}
	return b.String()
}
