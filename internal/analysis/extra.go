package analysis

import (
	"fmt"
	"sort"
	"strings"

	"madave/internal/corpus"
	"madave/internal/oracle"
)

// DayPoint is one crawl day's measurements.
type DayPoint struct {
	Day       int
	Ads       int
	Malicious int
}

// Rate returns the day's malicious fraction.
func (d DayPoint) Rate() float64 {
	if d.Ads == 0 {
		return 0
	}
	return float64(d.Malicious) / float64(d.Ads)
}

// Timeline computes the per-day ad volume and malicious rate over the
// crawl — the temporal view of the paper's three-month collection.
func Timeline(c *corpus.Corpus, res *oracle.Result) []DayPoint {
	malicious := map[string]bool{}
	for _, inc := range res.Incidents {
		malicious[inc.AdHash] = true
	}
	byDay := map[int]*DayPoint{}
	for _, ad := range c.All() {
		p := byDay[ad.Day]
		if p == nil {
			p = &DayPoint{Day: ad.Day}
			byDay[ad.Day] = p
		}
		p.Ads++
		if malicious[ad.Hash] {
			p.Malicious++
		}
	}
	out := make([]DayPoint, 0, len(byDay))
	for _, p := range byDay {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// Gini computes the Gini coefficient of a non-negative value vector — 0 for
// perfect equality, approaching 1 when one entry holds everything. The
// reproduction uses it to quantify how concentrated malvertising is among
// networks (Figure 2's qualitative point, as a number).
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64{}, values...)
	sort.Float64s(sorted)
	var cum, total float64
	for _, v := range sorted {
		total += v
	}
	if total == 0 {
		return 0
	}
	// Gini = 1 - 2 * sum_i ( (n-i-0.5)/n * v_i/total )  over sorted values;
	// use the standard "area under Lorenz curve" formulation.
	var lorenzArea float64
	for _, v := range sorted {
		prev := cum
		cum += v / total
		lorenzArea += (prev + cum) / 2
	}
	lorenzArea /= float64(n)
	return 1 - 2*lorenzArea
}

// Concentration summarizes how malvertising concentrates among serving
// networks.
type Concentration struct {
	// GiniIncidents is the Gini coefficient of per-network incident counts
	// (offending networks only).
	GiniIncidents float64
	// TopShare is the share of all incidents served by the single worst
	// network.
	TopShare float64
	// Top3Share is the share served by the three worst networks.
	Top3Share float64
}

// Concentrate computes the Concentration from a report's Figure 1 rows.
func Concentrate(rep *Report) Concentration {
	var counts []float64
	total := 0
	for _, row := range rep.Figure1 {
		counts = append(counts, float64(row.Malicious))
		total += row.Malicious
	}
	out := Concentration{GiniIncidents: Gini(counts)}
	if total == 0 {
		return out
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	out.TopShare = counts[0] / float64(total)
	for i := 0; i < 3 && i < len(counts); i++ {
		out.Top3Share += counts[i] / float64(total)
	}
	return out
}

// RenderFigures renders Figures 1-4 as ASCII bar charts, the terminal
// analogue of the paper's plots.
func (r *Report) RenderFigures() string {
	var b strings.Builder

	b.WriteString("Figure 1: malvertising ratio per network\n")
	for i, row := range r.Figure1 {
		if i >= 12 {
			break
		}
		fmt.Fprintf(&b, "  %-34s %6.3f %s\n", row.Network, row.Ratio, hbar(row.Ratio, 1.0, 40))
	}

	b.WriteString("\nFigure 2: volume share per offending network\n")
	for i, row := range r.Figure2 {
		if i >= 12 {
			break
		}
		fmt.Fprintf(&b, "  %-34s %6.3f %s\n", row.Network, row.TotalShare, hbar(row.TotalShare, 0.05, 40))
	}

	b.WriteString("\nFigure 3: site categories of malvertising\n")
	for _, row := range r.Figure3 {
		fmt.Fprintf(&b, "  %-15s %5.1f%% %s\n", row.Category, 100*row.Share, hbar(row.Share, 0.25, 40))
	}

	b.WriteString("\nFigure 4: TLDs of malvertising sites\n")
	for _, row := range r.Figure4 {
		fmt.Fprintf(&b, "  %-8s %5.1f%% %s\n", "."+row.TLD, 100*row.Share, hbar(row.Share, 0.6, 40))
	}

	b.WriteString("\nFigure 5: chain lengths (m = malicious, b = benign)\n")
	maxLen := r.Figure5.Benign.Max()
	if m := r.Figure5.Malicious.Max(); m > maxLen {
		maxLen = m
	}
	bTot, mTot := r.Figure5.Benign.Total(), r.Figure5.Malicious.Total()
	for v := 1; v <= maxLen; v++ {
		bc, mc := r.Figure5.Benign.Get(v), r.Figure5.Malicious.Get(v)
		if bc == 0 && mc == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %2d b%s\n     m%s\n", v,
			hbar(frac(bc, bTot), 1, 50), hbar(frac(mc, mTot), 1, 50))
	}
	return b.String()
}

func frac(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// hbar renders value as a bar scaled so that scale fills width.
func hbar(value, scale float64, width int) string {
	if scale <= 0 {
		return ""
	}
	n := int(value / scale * float64(width))
	if n > width {
		n = width
	}
	if n < 1 && value > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// Table1CSV renders Table 1 as CSV.
func (r *Report) Table1CSV() string {
	var b strings.Builder
	b.WriteString("category,incidents\n")
	for _, cat := range oracle.Categories() {
		fmt.Fprintf(&b, "%s,%d\n", cat, r.Table1.Counts[cat])
	}
	fmt.Fprintf(&b, "total,%d\nscanned,%d\n", r.Table1.Total, r.Table1.Scanned)
	return b.String()
}

// CategoriesCSV renders Figure 3 as CSV.
func (r *Report) CategoriesCSV() string {
	var b strings.Builder
	b.WriteString("category,count,share\n")
	for _, row := range r.Figure3 {
		fmt.Fprintf(&b, "%s,%d,%.6f\n", row.Category, row.Count, row.Share)
	}
	return b.String()
}

// TLDsCSV renders Figure 4 as CSV.
func (r *Report) TLDsCSV() string {
	var b strings.Builder
	b.WriteString("tld,generic,count,share\n")
	for _, row := range r.Figure4 {
		fmt.Fprintf(&b, "%s,%t,%d,%.6f\n", row.TLD, row.Generic, row.Count, row.Share)
	}
	return b.String()
}

// ClustersCSV renders the §4.2 shares as CSV.
func (r *Report) ClustersCSV() string {
	var b strings.Builder
	b.WriteString("cluster,mal_share,ad_share\n")
	for _, cl := range []string{ClusterTop, ClusterBottom, ClusterOther} {
		fmt.Fprintf(&b, "%s,%.6f,%.6f\n", cl, r.Clusters.MalShare[cl], r.Clusters.AdShare[cl])
	}
	return b.String()
}
