package analysis

import (
	"fmt"
	"math"
	"strings"

	"madave/internal/oracle"
)

// PaperCorpusSize is the paper's corpus: 673,596 unique advertisements.
const PaperCorpusSize = 673_596

// PaperTable1 holds the paper's Table 1 incident counts.
var PaperTable1 = map[oracle.Category]int{
	oracle.CatBlacklists:   4794,
	oracle.CatSuspRedirect: 1396,
	oracle.CatHeuristics:   309,
	oracle.CatMaliciousExe: 68,
	oracle.CatMaliciousSWF: 31,
	oracle.CatModel:        3,
}

// PaperTable1Total is the paper's 6,601 total incidents.
const PaperTable1Total = 6601

// Projection scales a measured Table 1 to a target corpus size, so runs at
// laptop scale can be compared row-by-row against the paper's absolute
// counts.
type Projection struct {
	// TargetCorpus is the corpus size projected to.
	TargetCorpus int
	// Counts are the projected incident counts per category.
	Counts map[oracle.Category]int
	// Total is the projected incident total.
	Total int
}

// ProjectTo scales the report's Table 1 proportions to a corpus of n ads.
func (r *Report) ProjectTo(n int) Projection {
	p := Projection{TargetCorpus: n, Counts: map[oracle.Category]int{}}
	if r.Table1.Scanned == 0 {
		return p
	}
	scale := float64(n) / float64(r.Table1.Scanned)
	for cat, c := range r.Table1.Counts {
		v := int(math.Round(float64(c) * scale))
		p.Counts[cat] = v
		p.Total += v
	}
	return p
}

// CompareToPaper renders the projection next to the paper's Table 1.
func (p Projection) CompareToPaper() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 projected to the paper's corpus (%d ads)\n", p.TargetCorpus)
	fmt.Fprintf(&b, "  %-26s %10s %10s\n", "category", "projected", "paper")
	for _, cat := range oracle.Categories() {
		fmt.Fprintf(&b, "  %-26s %10d %10d\n", categoryLabels[cat], p.Counts[cat], PaperTable1[cat])
	}
	fmt.Fprintf(&b, "  %-26s %10d %10d\n", "TOTAL", p.Total, PaperTable1Total)
	return b.String()
}
