package analysis

import (
	"math"
	"strings"
	"testing"

	"madave/internal/corpus"
	"madave/internal/oracle"
)

func TestTimeline(t *testing.T) {
	c := corpus.New()
	res := &oracle.Result{ByCategory: map[oracle.Category]int{}}
	add := func(day int, mal bool) {
		ad := &corpus.Ad{HTML: strings.Repeat("x", day) + boolStr(mal) + string(rune(c.Len())), Day: day}
		c.Add(ad)
		if mal {
			res.Incidents = append(res.Incidents, oracle.Incident{AdHash: ad.Hash, Category: oracle.CatBlacklists})
		}
	}
	for i := 0; i < 10; i++ {
		add(1, i == 0)
	}
	for i := 0; i < 5; i++ {
		add(2, false)
	}
	add(3, true)

	tl := Timeline(c, res)
	if len(tl) != 3 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl[0].Day != 1 || tl[0].Ads != 10 || tl[0].Malicious != 1 {
		t.Fatalf("day1 = %+v", tl[0])
	}
	if tl[1].Rate() != 0 {
		t.Fatalf("day2 rate = %f", tl[1].Rate())
	}
	if tl[2].Rate() != 1 {
		t.Fatalf("day3 rate = %f", tl[2].Rate())
	}
}

func boolStr(b bool) string {
	if b {
		return "m"
	}
	return "b"
}

func TestGini(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty gini = %f", g)
	}
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 0.01 {
		t.Fatalf("equal gini = %f, want ~0", g)
	}
	// One entry holds everything: Gini approaches 1-1/n.
	g := Gini([]float64{0, 0, 0, 100})
	if math.Abs(g-0.75) > 0.01 {
		t.Fatalf("concentrated gini = %f, want ~0.75", g)
	}
	// More unequal beats less unequal.
	if Gini([]float64{1, 1, 10}) <= Gini([]float64{3, 4, 5}) {
		t.Fatal("gini ordering violated")
	}
	if Gini([]float64{0, 0}) != 0 {
		t.Fatal("all-zero gini should be 0")
	}
}

func TestConcentrate(t *testing.T) {
	rep := &Report{
		Figure1: []NetworkRow{
			{Network: "a", Malicious: 70},
			{Network: "b", Malicious: 20},
			{Network: "c", Malicious: 10},
		},
	}
	c := Concentrate(rep)
	if math.Abs(c.TopShare-0.7) > 1e-9 {
		t.Fatalf("top share = %f", c.TopShare)
	}
	if math.Abs(c.Top3Share-1.0) > 1e-9 {
		t.Fatalf("top3 share = %f", c.Top3Share)
	}
	if c.GiniIncidents <= 0 {
		t.Fatalf("gini = %f", c.GiniIncidents)
	}
	empty := Concentrate(&Report{})
	if empty.TopShare != 0 || empty.GiniIncidents != 0 {
		t.Fatalf("empty concentration = %+v", empty)
	}
}

func TestRenderFigures(t *testing.T) {
	rep := Analyze(buildInput())
	out := rep.RenderFigures()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5", "█"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figures missing %q:\n%s", want, out)
		}
	}
}

func TestExtraCSVs(t *testing.T) {
	rep := Analyze(buildInput())
	if !strings.Contains(rep.Table1CSV(), "blacklists,2") {
		t.Fatalf("table1 csv:\n%s", rep.Table1CSV())
	}
	if !strings.Contains(rep.CategoriesCSV(), "news,2,") {
		t.Fatalf("categories csv:\n%s", rep.CategoriesCSV())
	}
	if !strings.Contains(rep.TLDsCSV(), "com,true,2,") {
		t.Fatalf("tlds csv:\n%s", rep.TLDsCSV())
	}
	if !strings.Contains(rep.ClustersCSV(), "top10k,") {
		t.Fatalf("clusters csv:\n%s", rep.ClustersCSV())
	}
}

func TestHbar(t *testing.T) {
	if hbar(0.5, 1, 10) != "█████" {
		t.Fatalf("hbar = %q", hbar(0.5, 1, 10))
	}
	if hbar(2, 1, 10) != strings.Repeat("█", 10) {
		t.Fatal("hbar should clamp")
	}
	if hbar(0.001, 1, 10) != "█" {
		t.Fatal("tiny positive values should show one cell")
	}
	if hbar(0, 1, 10) != "" {
		t.Fatal("zero should be empty")
	}
}

func TestProjection(t *testing.T) {
	rep := Analyze(buildInput())
	p := rep.ProjectTo(PaperCorpusSize)
	// 3 incidents in 150 ads -> 2% -> ~13472 projected incidents.
	if p.Total < 13000 || p.Total > 14000 {
		t.Fatalf("projected total = %d", p.Total)
	}
	// 2:1 ratio preserved up to per-row rounding.
	diff := p.Counts[oracle.CatBlacklists] - 2*p.Counts[oracle.CatSuspRedirect]
	if diff < -2 || diff > 2 {
		t.Fatalf("projection did not preserve proportions: %+v", p.Counts)
	}
	out := p.CompareToPaper()
	if !strings.Contains(out, "4794") || !strings.Contains(out, "673596") {
		t.Fatalf("comparison rendering:\n%s", out)
	}
	empty := (&Report{}).ProjectTo(1000)
	if empty.Total != 0 {
		t.Fatal("empty report should project to zero")
	}
}
