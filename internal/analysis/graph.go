package analysis

import (
	"fmt"
	"sort"
	"strings"

	"madave/internal/netcap"
	"madave/internal/urlx"
)

// HostGraph is the host-level redirection/inclusion graph mined from a
// crawl's HTTP trace — the "further investigation" the paper ran over its
// captured traffic, in the spirit of the Shady Paths line of work it cites:
// nodes are hosts, and an edge A→B means A redirected to B (HTTP 3xx) or a
// document on A caused a request to B (via Referer).
type HostGraph struct {
	// Edges maps source host -> destination host -> transition count.
	Edges map[string]map[string]int
	// nodes is the set of all hosts seen.
	nodes map[string]bool
}

// BuildHostGraph mines a transaction log into a host graph.
func BuildHostGraph(txs []netcap.Transaction) *HostGraph {
	g := &HostGraph{
		Edges: map[string]map[string]int{},
		nodes: map[string]bool{},
	}
	for i := range txs {
		tx := &txs[i]
		if tx.Host != "" {
			g.nodes[tx.Host] = true
		}
		// Redirect edge.
		if tx.IsRedirect() {
			dst := urlx.Host(urlx.Resolve(tx.URL, tx.Location))
			g.addEdge(tx.Host, dst)
		}
		// Inclusion edge from the referring document.
		if ref := urlx.Host(tx.Referer); ref != "" && ref != tx.Host {
			g.addEdge(ref, tx.Host)
		}
	}
	return g
}

func (g *HostGraph) addEdge(src, dst string) {
	if src == "" || dst == "" || src == dst {
		return
	}
	if g.Edges[src] == nil {
		g.Edges[src] = map[string]int{}
	}
	g.Edges[src][dst]++
	g.nodes[src] = true
	g.nodes[dst] = true
}

// NumHosts returns the number of distinct hosts.
func (g *HostGraph) NumHosts() int { return len(g.nodes) }

// NumEdges returns the number of distinct directed edges.
func (g *HostGraph) NumEdges() int {
	n := 0
	for _, dsts := range g.Edges {
		n += len(dsts)
	}
	return n
}

// OutDegree returns how many distinct hosts src leads to.
func (g *HostGraph) OutDegree(src string) int { return len(g.Edges[src]) }

// HubRow is one host with its transition volume.
type HubRow struct {
	Host string
	// Out is the total outgoing transition count (not distinct edges).
	Out int
	// Fanout is the number of distinct destination hosts.
	Fanout int
}

// Hubs returns hosts sorted by outgoing transition volume — in an ad crawl
// these are the exchanges that route slots onward (arbitration hubs).
func (g *HostGraph) Hubs() []HubRow {
	rows := make([]HubRow, 0, len(g.Edges))
	for src, dsts := range g.Edges {
		out := 0
		for _, n := range dsts {
			out += n
		}
		rows = append(rows, HubRow{Host: src, Out: out, Fanout: len(dsts)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Out != rows[j].Out {
			return rows[i].Out > rows[j].Out
		}
		return rows[i].Host < rows[j].Host
	})
	return rows
}

// ReachableFrom returns all hosts reachable from src (excluding src),
// following edges breadth-first.
func (g *HostGraph) ReachableFrom(src string) []string {
	seen := map[string]bool{src: true}
	queue := []string{src}
	var out []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		dsts := make([]string, 0, len(g.Edges[cur]))
		for d := range g.Edges[cur] {
			dsts = append(dsts, d)
		}
		sort.Strings(dsts)
		for _, d := range dsts {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
				queue = append(queue, d)
			}
		}
	}
	return out
}

// ShortestPath returns one shortest host path from src to dst (inclusive),
// or nil when dst is unreachable. In the malvertising setting this is the
// ad path from a publisher to an exploit server.
func (g *HostGraph) ShortestPath(src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{}
	seen := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		dsts := make([]string, 0, len(g.Edges[cur]))
		for d := range g.Edges[cur] {
			dsts = append(dsts, d)
		}
		sort.Strings(dsts)
		for _, d := range dsts {
			if seen[d] {
				continue
			}
			seen[d] = true
			prev[d] = cur
			if d == dst {
				// Reconstruct.
				path := []string{dst}
				for at := dst; at != src; {
					at = prev[at]
					path = append([]string{at}, path...)
				}
				return path
			}
			queue = append(queue, d)
		}
	}
	return nil
}

// RenderTop renders the graph's top hubs as text.
func (g *HostGraph) RenderTop(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host graph: %d hosts, %d edges\n", g.NumHosts(), g.NumEdges())
	for i, hub := range g.Hubs() {
		if i >= n {
			break
		}
		fmt.Fprintf(&b, "  %-40s out %6d  fanout %4d\n", hub.Host, hub.Out, hub.Fanout)
	}
	return b.String()
}
