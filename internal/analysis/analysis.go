// Package analysis computes the paper's results (§4) from a crawled corpus
// and its oracle classification: Table 1 (incident categories), Figure 1
// (per-network malvertising ratios), Figure 2 (per-network ad volume),
// the §4.2 cluster shares, Figure 3 (site categories), Figure 4 (TLDs),
// Figure 5 (arbitration chain length distributions), and the §4.4 sandbox
// census. Everything is computed from measured data — the corpus and the
// incidents — never from simulation ground truth.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"madave/internal/corpus"
	"madave/internal/crawler"
	"madave/internal/oracle"
	"madave/internal/stats"
	"madave/internal/urlx"
)

// Input bundles what the analysis consumes.
type Input struct {
	Corpus *corpus.Corpus
	Result *oracle.Result
	// TotalSites is the ranked population size (for cluster boundaries).
	TotalSites int
	// CrawlStats carries the §4.4 sandbox census from the crawl.
	CrawlStats *crawler.Stats
}

// Table1 is the classification of malvertisements.
type Table1 struct {
	Counts map[oracle.Category]int
	Total  int
	// Scanned is the corpus size; Rate = Total/Scanned.
	Scanned int
}

// Rate returns the fraction of advertisements that were malicious.
func (t *Table1) Rate() float64 {
	if t.Scanned == 0 {
		return 0
	}
	return float64(t.Total) / float64(t.Scanned)
}

// NetworkRow is one ad network's measurements (Figures 1 and 2).
type NetworkRow struct {
	Network    string
	Ads        int
	Malicious  int
	Ratio      float64 // malicious / ads (Figure 1)
	TotalShare float64 // ads / all ads (Figure 2)
}

// Cluster names reused from the §4.2 analysis.
const (
	ClusterTop    = "top10k"
	ClusterBottom = "bottom10k"
	ClusterOther  = "other"
)

// ClusterShares holds the §4.2 result.
type ClusterShares struct {
	// MalShare and AdShare map cluster -> fraction.
	MalShare map[string]float64
	AdShare  map[string]float64
}

// CategoryRow is one site-category share (Figure 3).
type CategoryRow struct {
	Category string
	Count    int
	Share    float64
}

// TLDRow is one TLD share (Figure 4).
type TLDRow struct {
	TLD     string
	Count   int
	Share   float64
	Generic bool
}

// ChainDist is Figure 5: chain-length histograms for benign and malicious
// advertisements.
type ChainDist struct {
	Benign    stats.IntHist
	Malicious stats.IntHist
}

// SandboxCensus is the §4.4 result.
type SandboxCensus struct {
	AdFrames     int64
	SandboxedAds int64
}

// Report is the full set of reproduced results.
type Report struct {
	Table1             Table1
	Figure1            []NetworkRow // sorted by descending malicious ratio
	Figure2            []NetworkRow // same rows sorted by descending total share
	Clusters           ClusterShares
	Figure3            []CategoryRow
	Figure4            []TLDRow
	GenericTLDMalShare float64
	Figure5            ChainDist
	Sandbox            SandboxCensus
	// Graph is the flow-graph oracle's section — nil when the graph oracle
	// was off. RenderText never reads it (render via Graph.RenderText), so
	// the base rendering is byte-identical graph-on or graph-off.
	Graph *GraphStats
}

// Analyze computes the report.
func Analyze(in Input) *Report {
	rep := &Report{}
	malicious := map[string]oracle.Category{}
	for _, inc := range in.Result.Incidents {
		malicious[inc.AdHash] = inc.Category
	}

	// Table 1.
	rep.Table1 = Table1{
		Counts:  map[oracle.Category]int{},
		Scanned: in.Result.Scanned,
	}
	for _, cat := range oracle.Categories() {
		rep.Table1.Counts[cat] = in.Result.ByCategory[cat]
		rep.Table1.Total += in.Result.ByCategory[cat]
	}

	// Per-network aggregation: the serving network is the arbitration
	// chain's final host.
	type netAgg struct{ ads, mal int }
	nets := map[string]*netAgg{}
	var malCluster, adCluster stats.Counter
	var malCats, malTLDs stats.Counter
	genericMal := 0

	for _, ad := range in.Corpus.All() {
		serving := servingNetwork(ad)
		agg := nets[serving]
		if agg == nil {
			agg = &netAgg{}
			nets[serving] = agg
		}
		agg.ads++

		cluster := clusterOf(ad.PubRank, in.TotalSites)
		adCluster.Add(cluster)

		chainLen := len(ad.Chain)
		_, isMal := malicious[ad.Hash]
		if isMal {
			agg.mal++
			malCluster.Add(cluster)
			malCats.Add(ad.Category)
			malTLDs.Add(ad.TLD)
			if urlx.IsGenericTLD(ad.TLD) {
				genericMal++
			}
			rep.Figure5.Malicious.Add(chainLen)
		} else {
			rep.Figure5.Benign.Add(chainLen)
		}
	}

	// Figures 1 and 2: networks that served at least one malvertisement
	// (the paper "only display[s] the ad networks that contain at least
	// one malvertisement").
	totalAds := in.Corpus.Len()
	for name, agg := range nets {
		if agg.mal == 0 {
			continue
		}
		row := NetworkRow{
			Network:   name,
			Ads:       agg.ads,
			Malicious: agg.mal,
		}
		if agg.ads > 0 {
			row.Ratio = float64(agg.mal) / float64(agg.ads)
		}
		if totalAds > 0 {
			row.TotalShare = float64(agg.ads) / float64(totalAds)
		}
		rep.Figure1 = append(rep.Figure1, row)
	}
	sort.Slice(rep.Figure1, func(i, j int) bool {
		if rep.Figure1[i].Ratio != rep.Figure1[j].Ratio {
			return rep.Figure1[i].Ratio > rep.Figure1[j].Ratio
		}
		return rep.Figure1[i].Network < rep.Figure1[j].Network
	})
	rep.Figure2 = append([]NetworkRow{}, rep.Figure1...)
	sort.Slice(rep.Figure2, func(i, j int) bool {
		if rep.Figure2[i].TotalShare != rep.Figure2[j].TotalShare {
			return rep.Figure2[i].TotalShare > rep.Figure2[j].TotalShare
		}
		return rep.Figure2[i].Network < rep.Figure2[j].Network
	})

	// §4.2 clusters.
	rep.Clusters = ClusterShares{
		MalShare: map[string]float64{},
		AdShare:  map[string]float64{},
	}
	for _, cl := range []string{ClusterTop, ClusterBottom, ClusterOther} {
		rep.Clusters.MalShare[cl] = malCluster.Share(cl)
		rep.Clusters.AdShare[cl] = adCluster.Share(cl)
	}

	// Figure 3: categories of sites serving malvertisements.
	for _, kv := range malCats.Sorted() {
		rep.Figure3 = append(rep.Figure3, CategoryRow{
			Category: kv.Key,
			Count:    kv.Count,
			Share:    malCats.Share(kv.Key),
		})
	}

	// Figure 4: TLDs of sites serving malvertisements.
	for _, kv := range malTLDs.Sorted() {
		rep.Figure4 = append(rep.Figure4, TLDRow{
			TLD:     kv.Key,
			Count:   kv.Count,
			Share:   malTLDs.Share(kv.Key),
			Generic: urlx.IsGenericTLD(kv.Key),
		})
	}
	if malTLDs.Total() > 0 {
		rep.GenericTLDMalShare = float64(genericMal) / float64(malTLDs.Total())
	}

	// §4.4 sandbox census.
	if in.CrawlStats != nil {
		rep.Sandbox = SandboxCensus{
			AdFrames:     in.CrawlStats.AdFrames,
			SandboxedAds: in.CrawlStats.SandboxedAds,
		}
	}

	// Flow-graph section (additive; nil when the graph oracle was off).
	rep.Graph = AnalyzeGraph(in.Corpus, in.Result)
	return rep
}

// servingNetwork returns the final host of the ad's arbitration chain.
func servingNetwork(ad *corpus.Ad) string {
	if len(ad.Chain) == 0 {
		return urlx.Host(ad.FinalURL)
	}
	return ad.Chain[len(ad.Chain)-1]
}

// clusterOf assigns the §4.2 cluster for a publisher rank.
func clusterOf(rank, totalSites int) string {
	switch {
	case rank <= 10_000:
		return ClusterTop
	case totalSites > 0 && rank > totalSites-10_000:
		return ClusterBottom
	default:
		return ClusterOther
	}
}

// categoryLabels gives Table 1 its paper row names.
var categoryLabels = map[oracle.Category]string{
	oracle.CatBlacklists:   "Blacklists",
	oracle.CatSuspRedirect: "Suspicious redirections",
	oracle.CatHeuristics:   "Heuristics",
	oracle.CatMaliciousExe: "Malicious executables",
	oracle.CatMaliciousSWF: "Malicious Flash",
	oracle.CatModel:        "Model detection",
}

// RenderText renders the whole report as the paper's tables and figure
// summaries in fixed-width text.
func (r *Report) RenderText() string {
	var b strings.Builder

	b.WriteString("Table 1: Classification of malvertisements\n")
	for _, cat := range oracle.Categories() {
		fmt.Fprintf(&b, "  %-26s %8d\n", categoryLabels[cat], r.Table1.Counts[cat])
	}
	fmt.Fprintf(&b, "  %-26s %8d  (%.2f%% of %d ads)\n\n",
		"TOTAL", r.Table1.Total, 100*r.Table1.Rate(), r.Table1.Scanned)

	b.WriteString("Figure 1: Malvertising ratio per ad network (top offenders)\n")
	for i, row := range r.Figure1 {
		if i >= 15 {
			fmt.Fprintf(&b, "  ... %d more networks\n", len(r.Figure1)-i)
			break
		}
		fmt.Fprintf(&b, "  %-34s ratio %6.3f  (%d/%d ads)\n",
			row.Network, row.Ratio, row.Malicious, row.Ads)
	}
	b.WriteString("\nFigure 2: Share of all ads per offending network\n")
	for i, row := range r.Figure2 {
		if i >= 10 {
			fmt.Fprintf(&b, "  ... %d more networks\n", len(r.Figure2)-i)
			break
		}
		fmt.Fprintf(&b, "  %-34s share %6.3f%%  (%d malicious)\n",
			row.Network, 100*row.TotalShare, row.Malicious)
	}

	b.WriteString("\nCluster shares (§4.2)\n")
	fmt.Fprintf(&b, "  %-10s  malvertisements %6.1f%%   all ads %6.1f%%\n",
		ClusterTop, 100*r.Clusters.MalShare[ClusterTop], 100*r.Clusters.AdShare[ClusterTop])
	fmt.Fprintf(&b, "  %-10s  malvertisements %6.1f%%   all ads %6.1f%%\n",
		ClusterBottom, 100*r.Clusters.MalShare[ClusterBottom], 100*r.Clusters.AdShare[ClusterBottom])
	fmt.Fprintf(&b, "  %-10s  malvertisements %6.1f%%   all ads %6.1f%%\n",
		ClusterOther, 100*r.Clusters.MalShare[ClusterOther], 100*r.Clusters.AdShare[ClusterOther])

	b.WriteString("\nFigure 3: Site categories serving malvertisements\n")
	for _, row := range r.Figure3 {
		fmt.Fprintf(&b, "  %-15s %6.1f%%  (%d)\n", row.Category, 100*row.Share, row.Count)
	}

	b.WriteString("\nFigure 4: TLDs of sites serving malvertisements\n")
	for _, row := range r.Figure4 {
		kind := "ccTLD"
		if row.Generic {
			kind = "gTLD"
		}
		fmt.Fprintf(&b, "  %-8s %-5s %6.1f%%  (%d)\n", "."+row.TLD, kind, 100*row.Share, row.Count)
	}
	fmt.Fprintf(&b, "  generic TLD share of malvertising: %.1f%%\n", 100*r.GenericTLDMalShare)

	b.WriteString("\nFigure 5: Arbitration chain lengths (auctions per slot)\n")
	fmt.Fprintf(&b, "  benign:    max %2d  mean %.2f\n", r.Figure5.Benign.Max(), r.Figure5.Benign.Mean())
	fmt.Fprintf(&b, "  malicious: max %2d  mean %.2f  share beyond 15 auctions %.2f%%\n",
		r.Figure5.Malicious.Max(), r.Figure5.Malicious.Mean(),
		100*r.Figure5.Malicious.TailShare(15))

	b.WriteString("\nSecure environment (§4.4)\n")
	fmt.Fprintf(&b, "  ad iframes observed: %d, with sandbox attribute: %d\n",
		r.Sandbox.AdFrames, r.Sandbox.SandboxedAds)
	return b.String()
}

// ChainSeriesCSV renders Figure 5 as CSV (auctions, benign, malicious).
func (r *Report) ChainSeriesCSV() string {
	var b strings.Builder
	b.WriteString("auctions,benign,malicious\n")
	maxLen := r.Figure5.Benign.Max()
	if m := r.Figure5.Malicious.Max(); m > maxLen {
		maxLen = m
	}
	for v := 1; v <= maxLen; v++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", v, r.Figure5.Benign.Get(v), r.Figure5.Malicious.Get(v))
	}
	return b.String()
}

// NetworksCSV renders Figures 1/2 as CSV.
func (r *Report) NetworksCSV() string {
	var b strings.Builder
	b.WriteString("network,ads,malicious,ratio,total_share\n")
	for _, row := range r.Figure1 {
		fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.6f\n",
			row.Network, row.Ads, row.Malicious, row.Ratio, row.TotalShare)
	}
	return b.String()
}
