package analysis

import (
	"fmt"
	"strings"
	"testing"

	"madave/internal/corpus"
	"madave/internal/crawler"
	"madave/internal/oracle"
)

// buildInput fabricates a corpus with known composition:
//   - 100 ads from top-cluster news .com sites via net-a (2 malicious)
//   - 40 ads from other-cluster adult .ru sites via net-b (1 malicious)
//   - 10 ads from bottom-cluster games .de sites via net-c (0 malicious)
func buildInput() Input {
	c := corpus.New()
	res := &oracle.Result{ByCategory: map[oracle.Category]int{}}
	totalSites := 30_000

	addAd := func(i int, pubRank int, cat, tld, net string, chainLen int, malCat oracle.Category) {
		ad := &corpus.Ad{
			HTML:     fmt.Sprintf("<html>ad %s %d</html>", net, i),
			FrameURL: "http://" + net + "/serve",
			PubHost:  fmt.Sprintf("www.site%d.%s", pubRank, tld),
			PubRank:  pubRank,
			Category: cat,
			TLD:      tld,
		}
		for h := 0; h < chainLen-1; h++ {
			ad.Chain = append(ad.Chain, fmt.Sprintf("adserv.hop%d.com", h))
		}
		ad.Chain = append(ad.Chain, net)
		c.Add(ad)
		if malCat != "" {
			res.Incidents = append(res.Incidents, oracle.Incident{AdHash: ad.Hash, Category: malCat, Evidence: "test"})
			res.ByCategory[malCat]++
		}
	}

	n := 0
	for i := 0; i < 100; i++ {
		n++
		malCat := oracle.Category("")
		chain := 2
		if i < 2 {
			malCat = oracle.CatBlacklists
			chain = 8
		}
		addAd(n, 100+i, "news", "com", "adserv.net-a.com", chain, malCat)
	}
	for i := 0; i < 40; i++ {
		n++
		malCat := oracle.Category("")
		chain := 1
		if i == 0 {
			malCat = oracle.CatSuspRedirect
			chain = 20
		}
		addAd(n, 15_000+i, "adult", "ru", "adserv.net-b.com", chain, malCat)
	}
	for i := 0; i < 10; i++ {
		n++
		addAd(n, 29_000+i, "games", "de", "adserv.net-c.com", 3, "")
	}
	res.Scanned = c.Len()
	return Input{
		Corpus:     c,
		Result:     res,
		TotalSites: totalSites,
		CrawlStats: &crawler.Stats{AdFrames: int64(c.Len()), SandboxedAds: 0},
	}
}

func TestTable1(t *testing.T) {
	rep := Analyze(buildInput())
	if rep.Table1.Total != 3 || rep.Table1.Scanned != 150 {
		t.Fatalf("table1 = %+v", rep.Table1)
	}
	if rep.Table1.Counts[oracle.CatBlacklists] != 2 {
		t.Fatalf("blacklists = %d", rep.Table1.Counts[oracle.CatBlacklists])
	}
	if rep.Table1.Counts[oracle.CatSuspRedirect] != 1 {
		t.Fatalf("redirections = %d", rep.Table1.Counts[oracle.CatSuspRedirect])
	}
	if r := rep.Table1.Rate(); r < 0.019 || r > 0.021 {
		t.Fatalf("rate = %f", r)
	}
}

func TestFigure1SortedByRatio(t *testing.T) {
	rep := Analyze(buildInput())
	// Only offending networks appear.
	if len(rep.Figure1) != 2 {
		t.Fatalf("figure1 rows = %+v", rep.Figure1)
	}
	// net-b: 1/40 = 0.025 > net-a: 2/100 = 0.02.
	if rep.Figure1[0].Network != "adserv.net-b.com" || rep.Figure1[1].Network != "adserv.net-a.com" {
		t.Fatalf("figure1 order: %+v", rep.Figure1)
	}
	if rep.Figure1[0].Ratio != 0.025 || rep.Figure1[1].Ratio != 0.02 {
		t.Fatalf("ratios: %+v", rep.Figure1)
	}
}

func TestFigure2SortedByShare(t *testing.T) {
	rep := Analyze(buildInput())
	if rep.Figure2[0].Network != "adserv.net-a.com" {
		t.Fatalf("figure2 order: %+v", rep.Figure2)
	}
	want := 100.0 / 150.0
	if diff := rep.Figure2[0].TotalShare - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("share = %f, want %f", rep.Figure2[0].TotalShare, want)
	}
}

func TestClusterShares(t *testing.T) {
	rep := Analyze(buildInput())
	if got := rep.Clusters.MalShare[ClusterTop]; got < 0.66 || got > 0.67 {
		t.Fatalf("top mal share = %f, want 2/3", got)
	}
	if got := rep.Clusters.MalShare[ClusterOther]; got < 0.33 || got > 0.34 {
		t.Fatalf("other mal share = %f, want 1/3", got)
	}
	if got := rep.Clusters.AdShare[ClusterTop]; got < 0.66 || got > 0.67 {
		t.Fatalf("top ad share = %f", got)
	}
	if rep.Clusters.MalShare[ClusterBottom] != 0 {
		t.Fatal("bottom should have no malvertisements in fixture")
	}
	if rep.Clusters.AdShare[ClusterBottom] == 0 {
		t.Fatal("bottom served ads in fixture")
	}
}

func TestFigure3Categories(t *testing.T) {
	rep := Analyze(buildInput())
	if len(rep.Figure3) != 2 {
		t.Fatalf("figure3 = %+v", rep.Figure3)
	}
	if rep.Figure3[0].Category != "news" || rep.Figure3[0].Count != 2 {
		t.Fatalf("figure3[0] = %+v", rep.Figure3[0])
	}
	if rep.Figure3[1].Category != "adult" || rep.Figure3[1].Count != 1 {
		t.Fatalf("figure3[1] = %+v", rep.Figure3[1])
	}
}

func TestFigure4TLDs(t *testing.T) {
	rep := Analyze(buildInput())
	if len(rep.Figure4) != 2 {
		t.Fatalf("figure4 = %+v", rep.Figure4)
	}
	if rep.Figure4[0].TLD != "com" || !rep.Figure4[0].Generic {
		t.Fatalf("figure4[0] = %+v", rep.Figure4[0])
	}
	if rep.Figure4[1].TLD != "ru" || rep.Figure4[1].Generic {
		t.Fatalf("figure4[1] = %+v", rep.Figure4[1])
	}
	if got := rep.GenericTLDMalShare; got < 0.66 || got > 0.67 {
		t.Fatalf("generic share = %f", got)
	}
}

func TestFigure5Chains(t *testing.T) {
	rep := Analyze(buildInput())
	if rep.Figure5.Malicious.Max() != 20 {
		t.Fatalf("malicious max = %d", rep.Figure5.Malicious.Max())
	}
	if rep.Figure5.Benign.Max() != 3 {
		t.Fatalf("benign max = %d", rep.Figure5.Benign.Max())
	}
	if rep.Figure5.Malicious.Total() != 3 || rep.Figure5.Benign.Total() != 147 {
		t.Fatalf("totals: mal=%d ben=%d", rep.Figure5.Malicious.Total(), rep.Figure5.Benign.Total())
	}
	if got := rep.Figure5.Malicious.TailShare(15); got < 0.33 || got > 0.34 {
		t.Fatalf("tail share = %f", got)
	}
}

func TestSandboxCensus(t *testing.T) {
	rep := Analyze(buildInput())
	if rep.Sandbox.AdFrames != 150 || rep.Sandbox.SandboxedAds != 0 {
		t.Fatalf("sandbox = %+v", rep.Sandbox)
	}
}

func TestRenderText(t *testing.T) {
	rep := Analyze(buildInput())
	out := rep.RenderText()
	for _, want := range []string{
		"Table 1", "Blacklists", "Suspicious redirections", "Model detection",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"adserv.net-b.com", "top10k", "sandbox", "news", ".com",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	rep := Analyze(buildInput())
	chains := rep.ChainSeriesCSV()
	if !strings.HasPrefix(chains, "auctions,benign,malicious\n") {
		t.Fatalf("chains csv: %q", chains)
	}
	if !strings.Contains(chains, "\n20,0,1\n") {
		t.Fatalf("chains csv missing the 20-hop malicious row:\n%s", chains)
	}
	nets := rep.NetworksCSV()
	if !strings.Contains(nets, "adserv.net-a.com,100,2,0.020000") {
		t.Fatalf("networks csv:\n%s", nets)
	}
}

func TestEmptyInput(t *testing.T) {
	in := Input{
		Corpus:     corpus.New(),
		Result:     &oracle.Result{ByCategory: map[oracle.Category]int{}},
		TotalSites: 30_000,
	}
	rep := Analyze(in)
	if rep.Table1.Total != 0 || rep.Table1.Rate() != 0 {
		t.Fatalf("empty table1 = %+v", rep.Table1)
	}
	if len(rep.Figure1) != 0 {
		t.Fatal("figure1 should be empty")
	}
	// Render must not panic on empty data.
	if rep.RenderText() == "" {
		t.Fatal("render empty")
	}
}

func TestClusterOf(t *testing.T) {
	if clusterOf(1, 30_000) != ClusterTop || clusterOf(10_000, 30_000) != ClusterTop {
		t.Fatal("top misassigned")
	}
	if clusterOf(10_001, 30_000) != ClusterOther {
		t.Fatal("other misassigned")
	}
	if clusterOf(20_001, 30_000) != ClusterBottom || clusterOf(30_000, 30_000) != ClusterBottom {
		t.Fatal("bottom misassigned")
	}
	if clusterOf(15_000, 0) != ClusterOther {
		t.Fatal("unknown population should default to other")
	}
}

func TestServingNetworkFallback(t *testing.T) {
	ad := &corpus.Ad{FinalURL: "http://adserv.solo.com/serve"}
	if got := servingNetwork(ad); got != "adserv.solo.com" {
		t.Fatalf("fallback = %q", got)
	}
}
