package urlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHost(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"http://www.Example.COM/page", "www.example.com"},
		{"https://ads.example.net:8080/x?y=1", "ads.example.net"},
		{"http://example.org", "example.org"},
		{"not a url ://", ""},
		{"/relative/path", ""},
	}
	for _, tc := range tests {
		if got := Host(tc.in); got != tc.want {
			t.Errorf("Host(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTLD(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"www.example.com", "com"},
		{"example.net", "net"},
		{"news.bbc.co.uk", "co.uk"},
		{"a.b.c.com.au", "com.au"},
		{"example.de", "de"},
		{"example.com:8080", "com"},
		{"EXAMPLE.COM", "com"},
		{"localhost", ""},
		{"", ""},
		{"example.com.", "com"},
	}
	for _, tc := range tests {
		if got := TLD(tc.in); got != tc.want {
			t.Errorf("TLD(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"www.news.bbc.co.uk", "bbc.co.uk"},
		{"ads.tracker.example.com", "example.com"},
		{"example.com", "example.com"},
		{"com", ""},
		{"co.uk", ""},
		{"localhost", ""},
		{"", ""},
		{"sub.example.de", "example.de"},
	}
	for _, tc := range tests {
		if got := RegisteredDomain(tc.in); got != tc.want {
			t.Errorf("RegisteredDomain(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestIsGenericTLD(t *testing.T) {
	for _, g := range []string{"com", "net", "org", "info", "COM"} {
		if !IsGenericTLD(g) {
			t.Errorf("IsGenericTLD(%q) = false", g)
		}
	}
	for _, cc := range []string{"de", "uk", "co.uk", "ru", "cn", ""} {
		if IsGenericTLD(cc) {
			t.Errorf("IsGenericTLD(%q) = true", cc)
		}
	}
}

func TestSameRegisteredDomain(t *testing.T) {
	if !SameRegisteredDomain("a.example.com", "b.example.com") {
		t.Error("subdomains of example.com should match")
	}
	if SameRegisteredDomain("a.example.com", "a.example.net") {
		t.Error("different TLDs should not match")
	}
	if SameRegisteredDomain("com", "com") {
		t.Error("bare TLDs should never match")
	}
	if SameRegisteredDomain("", "") {
		t.Error("empty hosts should never match")
	}
}

func TestIsSubdomainOf(t *testing.T) {
	if !IsSubdomainOf("ads.example.com", "example.com") {
		t.Error("ads.example.com should be subdomain of example.com")
	}
	if !IsSubdomainOf("example.com", "example.com") {
		t.Error("identical host should count")
	}
	if IsSubdomainOf("badexample.com", "example.com") {
		t.Error("suffix without dot boundary must not match")
	}
	if IsSubdomainOf("example.com", "ads.example.com") {
		t.Error("parent is not subdomain of child")
	}
	if IsSubdomainOf("", "example.com") || IsSubdomainOf("example.com", "") {
		t.Error("empty host/domain must not match")
	}
}

func TestResolve(t *testing.T) {
	tests := []struct {
		base, ref, want string
	}{
		{"http://example.com/a/b", "c", "http://example.com/a/c"},
		{"http://example.com/a/", "/x", "http://example.com/x"},
		{"http://example.com/", "http://other.net/y", "http://other.net/y"},
		{"http://example.com/", "//cdn.example.net/z", "http://cdn.example.net/z"},
	}
	for _, tc := range tests {
		if got := Resolve(tc.base, tc.ref); got != tc.want {
			t.Errorf("Resolve(%q, %q) = %q, want %q", tc.base, tc.ref, got, tc.want)
		}
	}
}

func TestIsAbsolute(t *testing.T) {
	if !IsAbsolute("http://example.com/x") || !IsAbsolute("https://a.b/") {
		t.Error("absolute URLs misclassified")
	}
	for _, rel := range []string{"/path", "page.html", "ftp://example.com/x", "", "javascript:void(0)"} {
		if IsAbsolute(rel) {
			t.Errorf("IsAbsolute(%q) = true", rel)
		}
	}
}

// Property: RegisteredDomain is idempotent — the registered domain of a
// registered domain is itself.
func TestRegisteredDomainIdempotent(t *testing.T) {
	hosts := []string{
		"www.news.bbc.co.uk", "ads.tracker.example.com", "x.y.z.example.net",
		"example.de", "a.example.org", "deep.sub.domain.example.info",
	}
	for _, h := range hosts {
		rd := RegisteredDomain(h)
		if rd == "" {
			t.Fatalf("no registered domain for %q", h)
		}
		if got := RegisteredDomain(rd); got != rd {
			t.Errorf("RegisteredDomain not idempotent: %q -> %q -> %q", h, rd, got)
		}
	}
}

// Property: for any generated host of the form word(.word)*.com, the
// registered domain ends with ".com" and has exactly two labels.
func TestRegisteredDomainShapeProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		labels := []string{word(a), word(b), word(c), "com"}
		host := strings.Join(labels, ".")
		rd := RegisteredDomain(host)
		if !strings.HasSuffix(rd, ".com") {
			return false
		}
		return strings.Count(rd, ".") == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func word(x uint8) string {
	const alpha = "abcdefghij"
	n := int(x%5) + 1
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[(int(x)+i)%len(alpha)])
	}
	return b.String()
}

func TestNormalizeHostBracketedIPv6(t *testing.T) {
	if got := TLD("[::1]:8080"); got != "" {
		t.Errorf("TLD of IPv6 literal = %q, want empty", got)
	}
}
