// Package urlx provides the URL and domain-name utilities the measurement
// pipeline needs: extracting host names, top-level domains, and registered
// (effective second-level) domains, and classifying TLDs as generic or
// country-code — the distinction behind the paper's Figure 4.
//
// A full public-suffix list would be overkill for the simulated web; the
// package embeds the multi-label suffixes that actually occur in the
// simulation plus the common real-world ones, and falls back to the last
// label otherwise.
package urlx

import (
	"net/url"
	"strings"
)

// multiLabelSuffixes lists public suffixes that span more than one DNS label.
// Single-label suffixes (com, net, de, ...) need no table: they are simply
// the final label.
var multiLabelSuffixes = map[string]bool{
	"co.uk":  true,
	"org.uk": true,
	"ac.uk":  true,
	"gov.uk": true,
	"com.au": true,
	"net.au": true,
	"org.au": true,
	"co.jp":  true,
	"ne.jp":  true,
	"or.jp":  true,
	"com.br": true,
	"com.cn": true,
	"net.cn": true,
	"org.cn": true,
	"co.in":  true,
	"co.kr":  true,
	"com.mx": true,
	"com.tr": true,
	"com.ru": true,
}

// genericTLDs is the set of generic (non-country-code) top-level domains the
// simulation uses. The paper's Figure 4 observes that gTLDs — mainly .com and
// .net — carry more than 66% of malvertising traffic.
var genericTLDs = map[string]bool{
	"com":  true,
	"net":  true,
	"org":  true,
	"info": true,
	"biz":  true,
	"edu":  true,
	"gov":  true,
	"mil":  true,
	"int":  true,
	"xxx":  true,
	"mobi": true,
	"name": true,
	"pro":  true,
	"aero": true,
	"asia": true,
	"cat":  true,
	"coop": true,
	"jobs": true,
	"tel":  true,
}

// Host extracts the lowercase host name (without port) from rawURL.
// It returns "" if the URL cannot be parsed or has no host.
func Host(rawURL string) string {
	// Fast path: plain absolute URL with an unreserved-character host. Hosts
	// with userinfo, brackets, percent-escapes, or anything unusual fall
	// back to net/url so behaviour is byte-identical with the parse-based
	// implementation (the property the urlx fuzz diff pins).
	if h, ok := fastHost(rawURL); ok {
		return lowerASCII(h)
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return ""
	}
	return lowerASCII(u.Hostname())
}

// fastHost scans the authority out of a well-formed scheme://host[:port]
// URL without allocating. ok is false whenever any byte makes the outcome
// less than obvious, sending the caller to the net/url slow path.
func fastHost(rawURL string) (string, bool) {
	// url.Parse can reject a URL for bytes far away from the authority
	// (control characters anywhere, malformed %-escapes in the fragment), in
	// which case Host must return "". Keep the fast path honest by taking it
	// only for printable-ASCII URLs with no escapes at all.
	for k := 0; k < len(rawURL); k++ {
		if c := rawURL[k]; c <= 0x20 || c >= 0x7F || c == '%' {
			return "", false
		}
	}
	i := strings.Index(rawURL, "://")
	if i < 1 {
		return "", false
	}
	// Scheme must be ALPHA *(ALPHA / DIGIT / "+" / "-" / "."), or url.Parse
	// would have failed (and Host returned "").
	if !isAlpha(rawURL[0]) {
		return "", false
	}
	for k := 1; k < i; k++ {
		c := rawURL[k]
		if !isAlpha(c) && !(c >= '0' && c <= '9') && c != '+' && c != '-' && c != '.' {
			return "", false
		}
	}
	rest := rawURL[i+3:]
	end := len(rest)
	for k := 0; k < len(rest); k++ {
		if c := rest[k]; c == '/' || c == '?' || c == '#' {
			end = k
			break
		}
	}
	auth := rest[:end]
	if auth == "" {
		return "", false
	}
	host := auth
	// Strip one numeric port; anything else after ':' is not the fast path.
	if j := strings.LastIndexByte(auth, ':'); j >= 0 {
		for k := j + 1; k < len(auth); k++ {
			if c := auth[k]; c < '0' || c > '9' {
				return "", false
			}
		}
		host = auth[:j]
	}
	if host == "" {
		return "", false
	}
	for k := 0; k < len(host); k++ {
		c := host[k]
		if !isAlpha(c) && !(c >= '0' && c <= '9') && c != '.' && c != '-' && c != '_' {
			return "", false
		}
	}
	return host, true
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// lowerASCII lowercases s, returning s unchanged (and unallocated) when it
// is pure lowercase ASCII — the common case for hosts. Any uppercase or
// non-ASCII byte defers to strings.ToLower so behaviour (including its
// invalid-UTF-8 replacement) is identical to the pre-fast-path code.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' || c >= 0x80 {
			return strings.ToLower(s)
		}
	}
	return s
}

// TLD returns the public suffix of host: "co.uk" for "www.bbc.co.uk",
// "com" for "ads.example.com". The host may include a port, which is
// stripped. It returns "" for empty or dotless hosts (e.g. "localhost").
func TLD(host string) string {
	host = normalizeHost(host)
	if host == "" {
		return ""
	}
	last := strings.LastIndexByte(host, '.')
	if last < 0 {
		return ""
	}
	// The last two labels are a contiguous substring of host, so the
	// multi-label check needs no concatenation.
	if prev := strings.LastIndexByte(host[:last], '.'); prev >= 0 {
		if two := host[prev+1:]; multiLabelSuffixes[two] {
			return two
		}
	} else if multiLabelSuffixes[host] {
		return host
	}
	return host[last+1:]
}

// RegisteredDomain returns the registrable domain of host — the public
// suffix plus one label: "bbc.co.uk" for "www.news.bbc.co.uk",
// "example.com" for "ads.tracker.example.com". It returns "" when host has
// no registrable domain (bare TLD, single label, empty).
func RegisteredDomain(host string) string {
	host = normalizeHost(host)
	if host == "" {
		return ""
	}
	suffix := TLD(host)
	if suffix == "" {
		return ""
	}
	if host == suffix {
		return ""
	}
	cut := len(host) - len(suffix) - 1
	if cut < 0 || host[cut] != '.' || host[cut+1:] != suffix {
		return "" // host did not actually end with ".suffix"
	}
	// The registrable domain is the suffix plus the label just before it —
	// a contiguous tail of host, so it is returned as a substring.
	j := strings.LastIndexByte(host[:cut], '.')
	if j == cut-1 {
		// Empty label just before the suffix ("a..com"): not a registrable
		// domain. Without this, every such host mapped to ".com" and
		// SameRegisteredDomain lumped them all together.
		return ""
	}
	return host[j+1:]
}

// IsGenericTLD reports whether tld (e.g. "com", "co.uk") is a generic TLD.
// Multi-label country suffixes such as "co.uk" are country-code by
// definition.
func IsGenericTLD(tld string) bool {
	return genericTLDs[lowerASCII(tld)]
}

// SameRegisteredDomain reports whether two hosts share a registrable domain.
// This is the third-party test ad-blocking filters and the same-origin-ish
// heuristics in the honeyclient rely on.
func SameRegisteredDomain(hostA, hostB string) bool {
	a := RegisteredDomain(hostA)
	b := RegisteredDomain(hostB)
	return a != "" && a == b
}

// IsSubdomainOf reports whether host equals domain or ends with "."+domain.
// Both are normalized to lowercase without ports.
func IsSubdomainOf(host, domain string) bool {
	host = normalizeHost(host)
	domain = normalizeHost(domain)
	if host == "" || domain == "" {
		return false
	}
	if host == domain {
		return true
	}
	return len(host) > len(domain) &&
		host[len(host)-len(domain)-1] == '.' &&
		strings.HasSuffix(host, domain)
}

// normalizeHost lowercases host and strips any port and trailing dot. Hosts
// containing interior whitespace are invalid and normalize to "": letting a
// space survive inside a label broke RegisteredDomain's idempotence, because
// re-normalizing the result trimmed the space and shifted label boundaries.
func normalizeHost(host string) string {
	host = lowerASCII(strings.TrimSpace(host))
	if strings.ContainsAny(host, " \t\r\n\f\v") {
		return ""
	}
	// Strip a port if present. IPv6 literals are not used by the simulation
	// but handle the bracket form defensively.
	if strings.HasPrefix(host, "[") {
		if i := strings.Index(host, "]"); i >= 0 {
			return host[1:i]
		}
		return ""
	}
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return strings.TrimSuffix(host, ".")
}

// Resolve resolves a possibly relative reference against a base URL and
// returns the absolute URL string, or "" if either part is unparsable.
// The emulated browser uses it for iframe src, script src, and redirects.
func Resolve(base, ref string) string {
	b, err := url.Parse(base)
	if err != nil {
		return ""
	}
	r, err := url.Parse(ref)
	if err != nil {
		return ""
	}
	return b.ResolveReference(r).String()
}

// IsAbsolute reports whether rawURL is an absolute http or https URL.
func IsAbsolute(rawURL string) bool {
	u, err := url.Parse(rawURL)
	if err != nil {
		return false
	}
	return (u.Scheme == "http" || u.Scheme == "https") && u.Host != ""
}
