package urlx

// Differential tests against net/url over the deterministic fuzzutil corpus,
// plus the regression for the empty-label RegisteredDomain bug. These run on
// every `go test` — the fuzz targets explore beyond the corpus, these pin the
// corpus behaviour down.

import (
	"net/url"
	"strings"
	"testing"

	"madave/internal/fuzzutil"
)

func TestHostDifferential(t *testing.T) {
	for _, raw := range fuzzutil.URLs(0xd1f, 300) {
		got := Host(raw)
		u, err := url.Parse(raw)
		if err != nil {
			if got != "" {
				t.Errorf("Host(%q) = %q, want \"\" for unparsable input", raw, got)
			}
			continue
		}
		if want := strings.ToLower(u.Hostname()); got != want {
			t.Error(fuzzutil.Diff("Host("+raw+")", got, want))
		}
	}
}

func TestResolveDifferential(t *testing.T) {
	bases := fuzzutil.URLs(0xd20, 100)
	refs := fuzzutil.URLs(0xd21, 100)
	for i := range bases {
		got := Resolve(bases[i], refs[i])
		b, errB := url.Parse(bases[i])
		r, errR := url.Parse(refs[i])
		if errB != nil || errR != nil {
			if got != "" {
				t.Errorf("Resolve(%q, %q) = %q, want \"\" for unparsable parts", bases[i], refs[i], got)
			}
			continue
		}
		if want := b.ResolveReference(r).String(); got != want {
			t.Error(fuzzutil.Diff("Resolve("+bases[i]+", "+refs[i]+")", got, want))
		}
	}
}

func TestDomainLawsOverCorpus(t *testing.T) {
	for _, h := range fuzzutil.Hosts(0xd22, 500) {
		checkRegisteredDomainLaws(t, h)
	}
}

// Pre-fix: RegisteredDomain("a..com") returned ".com", so every host with an
// empty label before its suffix shared a "registered domain" with every
// other — collapsing unrelated hosts in the third-party attribution.
func TestRegisteredDomainEmptyLabel(t *testing.T) {
	for _, h := range []string{"a..com", "b..com", "..com", "x...co.uk"} {
		if rd := RegisteredDomain(h); rd != "" {
			t.Errorf("RegisteredDomain(%q) = %q, want \"\"", h, rd)
		}
	}
	if SameRegisteredDomain("a..com", "b..com") {
		t.Error(`SameRegisteredDomain("a..com", "b..com") = true, want false`)
	}
	// Hosts with empty labels elsewhere still resolve normally.
	if rd := RegisteredDomain("a..b.example.com"); rd != "example.com" {
		t.Errorf(`RegisteredDomain("a..b.example.com") = %q, want "example.com"`, rd)
	}
}

// Harness-found (FuzzRegisteredDomain crasher ". .00"): a space inside a
// label survived normalizeHost, so RegisteredDomain(". .00") = " .00" but
// RegisteredDomain(" .00") = "" — idempotence broken. Whitespace inside a
// host now normalizes the whole host to invalid.
func TestHostInteriorWhitespace(t *testing.T) {
	for _, h := range []string{". .00", "a b.com", "a\tb.com", "www.ex ample.com"} {
		if rd := RegisteredDomain(h); rd != "" {
			t.Errorf("RegisteredDomain(%q) = %q, want \"\"", h, rd)
		}
		if tld := TLD(h); tld != "" {
			t.Errorf("TLD(%q) = %q, want \"\"", h, tld)
		}
	}
	// Leading/trailing whitespace is still trimmed, not rejected.
	if rd := RegisteredDomain("  www.example.com  "); rd != "example.com" {
		t.Errorf(`RegisteredDomain("  www.example.com  ") = %q, want "example.com"`, rd)
	}
}
