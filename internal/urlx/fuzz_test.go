package urlx

// Native fuzz targets for the URL/domain utilities (DESIGN.md §12). The
// oracles are differential (net/url is the reference for parsing) and
// algebraic: the domain functions obey suffix/idempotence/symmetry laws no
// matter how hostile the host string is. Attribution in the paper's
// measurements — which registered domain served an ad, whether a request is
// third-party — rides on these laws.

import (
	"net/url"
	"strings"
	"testing"

	"madave/internal/fuzzutil"
)

var hostBugSeeds = []string{
	"a..com",           // empty label before the suffix: must have no registered domain
	"b..com",           // pre-fix, a..com and b..com were "same registered domain"
	".com",             // bare dotted TLD
	"..",               //
	". .00",            // interior space: broke RegisteredDomain idempotence
	"www.EXAMPLE.com.", // case + trailing dot
	"bbc.co.uk:8080",
	"[2001:db8::1]:443",
	"xn--p1ai.org.uk",
}

func addHostSeeds(f *testing.F) {
	fuzzutil.SeedStrings(f, hostBugSeeds...)
	fuzzutil.SeedStrings(f, fuzzutil.Hosts(0x40, 24)...)
}

func FuzzHost(f *testing.F) {
	fuzzutil.SeedStrings(f, fuzzutil.URLs(0x41, 24)...)
	fuzzutil.SeedStrings(f, "http://ADS.Example.COM:8080/x", "//cdn.example.net/a.js", "%zz", "javascript:alert(1)")
	f.Fuzz(func(t *testing.T, rawURL string) {
		if len(rawURL) > 1<<12 {
			t.Skip("oversized input")
		}
		h := Host(rawURL)
		if h != strings.ToLower(h) {
			t.Fatalf("Host(%q) = %q: not lowercase", rawURL, h)
		}
		u, err := url.Parse(rawURL)
		if err != nil {
			if h != "" {
				t.Fatalf("Host(%q) = %q but net/url rejects the input: %v", rawURL, h, err)
			}
			return
		}
		if want := strings.ToLower(u.Hostname()); h != want {
			t.Fatal(fuzzutil.Diff("Host vs net/url Hostname", h, want))
		}
	})
}

func FuzzTLD(f *testing.F) {
	addHostSeeds(f)
	f.Fuzz(func(t *testing.T, host string) {
		if len(host) > 1<<10 {
			t.Skip("oversized input")
		}
		tld := TLD(host)
		if tld == "" {
			return
		}
		if tld != strings.ToLower(tld) {
			t.Fatalf("TLD(%q) = %q: not lowercase", host, tld)
		}
		norm := normalizeHost(host)
		if norm != tld && !strings.HasSuffix(norm, "."+tld) {
			t.Fatalf("TLD(%q) = %q is not a label-boundary suffix of %q", host, tld, norm)
		}
	})
}

func FuzzRegisteredDomain(f *testing.F) {
	rng := fuzzutil.NewRNG(0x42)
	hosts := fuzzutil.Hosts(0x43, 24)
	for i := 0; i < 12; i++ {
		f.Add(rng.Pick(hosts), rng.Pick(hosts))
	}
	f.Add("a..com", "b..com")
	f.Add("www.example.com", "ads.example.com")
	f.Add("news.bbc.co.uk", "bbc.co.uk")
	f.Fuzz(func(t *testing.T, hostA, hostB string) {
		if len(hostA) > 1<<10 || len(hostB) > 1<<10 {
			t.Skip("oversized input")
		}
		checkRegisteredDomainLaws(t, hostA)
		checkRegisteredDomainLaws(t, hostB)
		// SameRegisteredDomain must be symmetric and must equal the
		// definitional form.
		ab, ba := SameRegisteredDomain(hostA, hostB), SameRegisteredDomain(hostB, hostA)
		if ab != ba {
			t.Fatalf("SameRegisteredDomain(%q, %q) = %v but reversed = %v", hostA, hostB, ab, ba)
		}
		rdA, rdB := RegisteredDomain(hostA), RegisteredDomain(hostB)
		if want := rdA != "" && rdA == rdB; ab != want {
			t.Fatalf("SameRegisteredDomain(%q, %q) = %v, want %v (rd %q vs %q)", hostA, hostB, ab, want, rdA, rdB)
		}
	})
}

func checkRegisteredDomainLaws(t *testing.T, host string) {
	t.Helper()
	rd := RegisteredDomain(host)
	if rd == "" {
		return
	}
	norm := normalizeHost(host)
	if rd != norm && !strings.HasSuffix(norm, "."+rd) {
		t.Fatalf("RegisteredDomain(%q) = %q is not a label-boundary suffix of %q", host, rd, norm)
	}
	for _, label := range strings.Split(rd, ".") {
		if label == "" {
			t.Fatalf("RegisteredDomain(%q) = %q contains an empty label", host, rd)
		}
	}
	if got := TLD(rd); got != TLD(host) {
		t.Fatalf("TLD(RegisteredDomain(%q)) = %q, want TLD(host) = %q", host, got, TLD(host))
	}
	if got := RegisteredDomain(rd); got != rd {
		t.Fatalf("RegisteredDomain not idempotent on %q: %q -> %q", host, rd, got)
	}
	if !IsSubdomainOf(host, rd) {
		t.Fatalf("IsSubdomainOf(%q, RegisteredDomain=%q) = false", host, rd)
	}
}

func FuzzResolve(f *testing.F) {
	bases := fuzzutil.URLs(0x44, 12)
	refs := fuzzutil.URLs(0x45, 12)
	for i := range bases {
		f.Add(bases[i], refs[i])
	}
	f.Add("http://pub.example/page", "/ads/slot1")
	f.Add("http://pub.example/a/b", "../c?d=1#f")
	f.Add("http://pub.example/", "//cdn.example/x.js")
	f.Fuzz(func(t *testing.T, base, ref string) {
		if len(base) > 1<<12 || len(ref) > 1<<12 {
			t.Skip("oversized input")
		}
		got := Resolve(base, ref)
		b, errB := url.Parse(base)
		r, errR := url.Parse(ref)
		if errB != nil || errR != nil {
			if got != "" {
				t.Fatalf("Resolve(%q, %q) = %q but a part is unparsable", base, ref, got)
			}
			return
		}
		if want := b.ResolveReference(r).String(); got != want {
			t.Fatal(fuzzutil.Diff("Resolve vs net/url ResolveReference", got, want))
		}
		if got == "" {
			return
		}
		if _, err := url.Parse(got); err != nil {
			t.Fatalf("Resolve(%q, %q) = %q is unparsable: %v", base, ref, got, err)
		}
		if IsAbsolute(ref) && Host(got) != Host(ref) {
			t.Fatalf("Resolve(%q, %q) = %q changed the absolute ref's host %q -> %q", base, ref, got, Host(ref), Host(got))
		}
	})
}
