package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"madave/internal/browser"
	"madave/internal/corpus"
	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/netcap"
	"madave/internal/resilient"
	"madave/internal/stats"
	"madave/internal/telemetry"
	"madave/internal/webgen"
)

// Visit is one unit of crawl work: a (site, day, refresh) triple. The batch
// crawl stripes Visits across workers; the streaming service journals them
// one at a time.
type Visit struct {
	Site    *webgen.Site
	Day     int
	Refresh int
}

// Key identifies the visit for telemetry (span IDs derive from it) and for
// the streaming journal.
func (v Visit) Key() string {
	return fmt.Sprintf("%s|d%dr%d", v.Site.Host, v.Day, v.Refresh)
}

// Visits enumerates the crawl schedule for the given sites in deterministic
// order (day-major, then site, then refresh) — the same order RunContext
// stripes across its workers, and the sequence numbering the streaming
// service journals against.
func (c *Crawler) Visits(sites []*webgen.Site) []Visit {
	var out []Visit
	for day := 1; day <= c.Config.Days; day++ {
		for _, s := range sites {
			for r := 0; r < c.Config.Refreshes; r++ {
				out = append(out, Visit{Site: s, Day: day, Refresh: r})
			}
		}
	}
	return out
}

// HarvestedAd is one ad snapshot with the frame attributes that do not live
// on the corpus record.
type HarvestedAd struct {
	Ad        *corpus.Ad
	Sandboxed bool
}

// VisitOutcome is the complete observation of one visit. Under CrawlOne it
// is a pure function of (Config.Seed, Visit): the browser, RNG, breakers and
// transport are all rebuilt from the visit key, so re-executing the visit —
// on another worker, in another order, or after a crash — reproduces the
// outcome byte for byte.
type VisitOutcome struct {
	Visit     Visit
	PageError bool
	// ErrCause buckets a failed visit: "nxdomain", "timeout", "http" or
	// "other" ("" when the load succeeded).
	ErrCause string
	Frames   int
	NonAd    int
	Degraded bool
	Ads      []HarvestedAd
	// Resilience events observed during this visit (hermetic mode only; the
	// batch crawl accounts these crawl-wide instead).
	Retries  int64
	Timeouts int64
}

// CrawlOne performs one hermetic visit for the streaming service: a fresh
// browser whose RNG, cookie jar, capture, retry jitter, and circuit-breaker
// state derive only from (Config.Seed, v) — never from which worker runs the
// visit or what ran before it. Crash-recovery determinism rests on this:
// a re-executed visit is indistinguishable from its first execution.
func (c *Crawler) CrawlOne(ctx context.Context, v Visit) *VisitOutcome {
	tel, m := c.streamMetrics()
	counters := &resilient.Counters{}
	b := c.newVisitBrowser(v, counters)
	out := c.visitOnce(ctx, tel, b, easylist.NewRequestCtx(), v)
	res := counters.Snapshot()
	out.Retries, out.Timeouts = res.Retries, res.Timeouts
	m.record(out)
	return out
}

// streamMetrics lazily builds the metrics handle CrawlOne records into
// (shared across all hermetic visits; purely observational).
func (c *Crawler) streamMetrics() (*telemetry.Set, *crawlMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.smetrics == nil {
		tel := c.Telemetry
		if tel == nil {
			tel = telemetry.New(c.Config.Seed)
		}
		c.smetrics = newCrawlMetrics(tel)
	}
	return c.smetrics.tel, c.smetrics
}

// newVisitBrowser is newWorkerBrowser's hermetic sibling: the same transport
// stack, but every seed-bearing component forks from the visit key instead
// of a worker index, and breaker state is per-visit rather than per-worker.
func (c *Crawler) newVisitBrowser(v Visit, counters *resilient.Counters) *browser.Browser {
	var rt http.RoundTripper = &memnet.Transport{U: c.Universe, Tel: c.Telemetry}
	if c.Transport != nil {
		rt = c.Transport()
	}
	pol := c.Config.Retry
	pol.Seed = c.Config.Seed
	res := resilient.New(rt, pol, counters)
	res.Tel = c.Telemetry
	res.Breakers = resilient.NewBreakerSet(c.Config.BreakerThreshold, c.Config.BreakerCooldown)
	cap := netcap.New(res)
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := browser.New(client, browser.UserProfile())
	b.Capture = cap
	b.Tel = c.Telemetry
	b.RNG = stats.NewRNG(c.Config.Seed).Fork("crawler-visit-" + v.Key())
	return b
}

// visitOnce loads one page visit under the visit deadline and harvests its
// ad iframes into a VisitOutcome. It observes; it does not count — metric
// accounting happens in crawlMetrics.record so the batch and streaming paths
// share one observation routine.
func (c *Crawler) visitOnce(ctx context.Context, tel *telemetry.Set, b *browser.Browser, mctx *easylist.RequestCtx, v Visit) *VisitOutcome {
	out := &VisitOutcome{Visit: v}
	pageURL := fmt.Sprintf("http://%s/?v=d%dr%d", v.Site.Host, v.Day, v.Refresh)
	vctx, vspan := tel.StartSpan(ctx, telemetry.StageCrawlVisit, v.Key())
	defer vspan.End()
	if t := c.visitTimeout(); t > 0 {
		var cancel context.CancelFunc
		vctx, cancel = context.WithTimeout(vctx, t)
		defer cancel()
	}
	page, err := b.LoadContext(vctx, pageURL, "")
	if err != nil {
		out.PageError = true
		out.ErrCause = pageErrCause(err)
	} else if page != nil && page.Status >= 400 {
		out.PageError = true
		out.ErrCause = "http"
	}
	if page == nil {
		return out
	}
	// A failed or partial load is not discarded: whatever frames survived
	// are still classified and harvested (graceful degradation).
	if (err != nil || len(page.Errors) > 0) && len(page.Frames) > 0 {
		out.Degraded = true
	}
	out.Frames = len(page.Frames)
	for _, frame := range page.Frames {
		msp := tel.StartStageTimer(vctx, telemetry.StageEasyList, frame.URL)
		ad := c.isAdFrame(mctx, frame.URL, v.Site.Host)
		msp.End()
		if !ad {
			out.NonAd++
			continue
		}
		out.Ads = append(out.Ads, HarvestedAd{Ad: c.snapshot(frame, v), Sandboxed: frame.Sandboxed})
	}
	return out
}

// pageErrCause buckets a failed top-level load by cause.
func pageErrCause(err error) string {
	var nx *memnet.NXDomainError
	switch {
	case errors.As(err, &nx):
		return "nxdomain"
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "other"
	}
}
