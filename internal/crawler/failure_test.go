package crawler

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/webgen"
)

// hostileWorld overlays failure modes onto the shared fixture universe:
// publishers that 500, serve garbage, redirect forever, or hang their ad
// chains on dead hosts. The crawler must degrade gracefully — count errors,
// keep collecting from healthy sites — exactly what a three-month crawl of
// the real Web demands.
func hostileWorld(t *testing.T) (*memnet.Universe, *webgen.Web, *easylist.List, []*webgen.Site) {
	_, web, list := fixture(t)
	// A private universe: sabotaging the shared fixture would poison the
	// other tests in this package.
	u := memnet.NewUniverse()
	fixSrv.Install(u)

	sites := append([]*webgen.Site{}, web.TopSlice(12)...)
	// Sabotage the first few sites' hosts with failure modes.
	u.HandleFunc(sites[0].Host, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal error", http.StatusInternalServerError)
	})
	u.HandleFunc(sites[1].Host, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<<<%%% this is not even close to html &&&&")
	})
	u.HandleFunc(sites[2].Host, func(w http.ResponseWriter, r *http.Request) {
		// Two-state redirect loop that never converges.
		next := "/loopA"
		if r.URL.Path == "/loopA" {
			next = "/loopB"
		}
		http.Redirect(w, r, "http://"+sites[2].Host+next, http.StatusFound)
	})
	u.HandleFunc(sites[3].Host, func(w http.ResponseWriter, r *http.Request) {
		// Ad iframe pointing at a dead (NX) ad host.
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body>
			<iframe src="http://adserv.deadexchange99.com/serve?pub=x&slot=0&imp=a&hop=0"></iframe>
		</body></html>`)
	})
	u.HandleFunc(sites[4].Host, func(w http.ResponseWriter, r *http.Request) {
		// Enormous body: the browser must cap what it reads.
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><body>")
		filler := strings.Repeat("<p>"+strings.Repeat("x", 1000)+"</p>", 3000) // ~3MB
		io.WriteString(w, filler)
		io.WriteString(w, "</body></html>")
	})
	return u, web, list, sites
}

func TestCrawlSurvivesHostileSites(t *testing.T) {
	u, web, list, sites := hostileWorld(t)
	// The dead exchange must match the ad filter so the crawler tries it.
	extra, err := easylist.ParseRule("||adserv.deadexchange99.com^")
	if err != nil {
		t.Fatal(err)
	}
	list.Add(extra)

	c := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 4, Seed: 17})
	corp, st := c.Run(sites)

	if st.PagesVisited != int64(len(sites)) {
		t.Fatalf("visited %d of %d", st.PagesVisited, len(sites))
	}
	// The redirect-loop page errors; the others degrade without erroring.
	if st.PageErrors == 0 {
		t.Fatal("expected at least one page error (redirect loop)")
	}
	if st.PageErrors > 3 {
		t.Fatalf("too many page errors: %d", st.PageErrors)
	}
	// Healthy sites still produced ads.
	if corp.Len() == 0 {
		t.Fatal("hostile sites starved the whole crawl")
	}
	healthy := 0
	for _, ad := range corp.All() {
		for _, s := range sites[5:] {
			if ad.PubHost == s.Host {
				healthy++
				break
			}
		}
	}
	if healthy == 0 {
		t.Fatal("no ads from healthy sites")
	}
}

func TestDeadAdExchangeRecorded(t *testing.T) {
	u, web, list, sites := hostileWorld(t)
	c := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 1, Seed: 18})
	corp, st := c.Run(sites[3:4]) // only the dead-exchange page

	// The page itself loads fine; the ad frame fails to resolve. The
	// crawler records the frame as an ad but snapshots nothing useful.
	if st.PageErrors != 0 {
		t.Fatalf("page errors = %d", st.PageErrors)
	}
	if st.FramesSeen != 1 {
		t.Fatalf("frames = %d", st.FramesSeen)
	}
	_ = corp
}

func TestOversizedPageCapped(t *testing.T) {
	u, web, list, sites := hostileWorld(t)
	c := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 1, Seed: 19})
	corp, st := c.Run(sites[4:5])
	if st.PageErrors != 0 {
		t.Fatalf("oversized page should not error: %d", st.PageErrors)
	}
	// No ad iframes on the giant page (the 1MB cap truncates before any
	// iframes could appear, and it had none anyway).
	if corp.Len() != 0 {
		t.Fatalf("corpus = %d", corp.Len())
	}
}
