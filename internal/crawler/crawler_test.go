package crawler

import (
	"strings"
	"sync"
	"testing"

	"madave/internal/adnet"
	"madave/internal/adserver"
	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/webgen"
)

var (
	onceFix sync.Once
	fixU    *memnet.Universe
	fixWeb  *webgen.Web
	fixList *easylist.List
	fixSrv  *adserver.Server
)

func fixture(t *testing.T) (*memnet.Universe, *webgen.Web, *easylist.List) {
	t.Helper()
	onceFix.Do(func() {
		web, err := webgen.Generate(webgen.DefaultConfig())
		if err != nil {
			panic(err)
		}
		eco, err := adnet.Generate(adnet.DefaultConfig())
		if err != nil {
			panic(err)
		}
		srv := adserver.New(eco, web, 7)
		u := memnet.NewUniverse()
		srv.Install(u)
		list, err := easylist.ParseString(srv.BuildEasyList())
		if err != nil {
			panic(err)
		}
		fixU, fixWeb, fixList, fixSrv = u, web, list, srv
	})
	return fixU, fixWeb, fixList
}

func TestCrawlCollectsAds(t *testing.T) {
	u, web, list := fixture(t)
	cfg := Config{Days: 1, Refreshes: 2, Parallelism: 4, Seed: 1}
	c := New(u, list, web, cfg)

	sites := web.TopSlice(30) // rank 1-30: every page has 5-7 ad slots
	corp, st := c.Run(sites)

	wantVisits := int64(len(sites) * cfg.Days * cfg.Refreshes)
	if st.PagesVisited != wantVisits {
		t.Fatalf("pages visited = %d, want %d", st.PagesVisited, wantVisits)
	}
	if st.PageErrors != 0 {
		t.Fatalf("page errors = %d", st.PageErrors)
	}
	// Every page has exactly one non-ad (widget) iframe.
	if st.NonAdFrames != wantVisits {
		t.Fatalf("non-ad frames = %d, want %d (one widget per page)", st.NonAdFrames, wantVisits)
	}
	if st.AdFrames == 0 || st.AdFrames != st.FramesSeen-st.NonAdFrames {
		t.Fatalf("ad frames = %d of %d", st.AdFrames, st.FramesSeen)
	}
	// §4.4: no publisher sandboxes its ad iframes.
	if st.SandboxedAds != 0 {
		t.Fatalf("sandboxed ads = %d, want 0", st.SandboxedAds)
	}
	if corp.Len() == 0 {
		t.Fatal("empty corpus")
	}
	// Impressions are unique per (site, slot, nonce), so snapshots should
	// be nearly all unique.
	if int64(corp.Len())+st.Duplicates != st.SnapshotsTaken {
		t.Fatalf("corpus %d + dups %d != snapshots %d", corp.Len(), st.Duplicates, st.SnapshotsTaken)
	}
}

func TestAdRecordFields(t *testing.T) {
	u, web, list := fixture(t)
	c := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 2, Seed: 2})
	sites := web.TopSlice(10)
	corp, _ := c.Run(sites)

	for _, ad := range corp.All() {
		if ad.Hash == "" || ad.HTML == "" {
			t.Fatal("ad missing content")
		}
		if ad.Impression == "" {
			t.Fatalf("ad missing impression: %s", ad.FrameURL)
		}
		if ad.PubHost == "" || ad.PubRank == 0 || ad.Category == "" || ad.TLD == "" {
			t.Fatalf("ad missing publisher context: %+v", ad)
		}
		if len(ad.Chain) == 0 {
			t.Fatal("ad missing arbitration chain")
		}
		for _, h := range ad.Chain {
			if !strings.HasPrefix(h, "adserv.") {
				t.Fatalf("chain host %q is not an ad network", h)
			}
		}
		if len(ad.Hosts) == 0 {
			t.Fatal("ad missing contacted hosts")
		}
		site := web.ByHost(ad.PubHost)
		if site == nil || site.Rank != ad.PubRank {
			t.Fatalf("publisher context inconsistent: %+v", ad)
		}
	}
}

func TestChainMatchesGroundTruth(t *testing.T) {
	u, web, list := fixture(t)
	c := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 1, Seed: 3})
	sites := web.TopSlice(5)
	corp, _ := c.Run(sites)

	checked := 0
	for _, ad := range corp.All() {
		d, ok := fixSrv.Decide(ad.PubHost, ad.Impression)
		if !ok {
			t.Fatalf("no decision for %s", ad.Impression)
		}
		if len(ad.Chain) != d.Auctions() {
			t.Fatalf("observed chain %d != ground truth %d for %s",
				len(ad.Chain), d.Auctions(), ad.Impression)
		}
		for i, host := range ad.Chain {
			want := fixSrv.Eco.Networks[d.Chain[i]].Domain
			if host != want {
				t.Fatalf("chain[%d] = %q, want %q", i, host, want)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestRefreshesYieldDistinctAds(t *testing.T) {
	u, web, list := fixture(t)
	one := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 2, Seed: 4})
	five := New(u, list, web, Config{Days: 1, Refreshes: 5, Parallelism: 2, Seed: 4})
	sites := web.TopSlice(10)
	c1, _ := one.Run(sites)
	c5, _ := five.Run(sites)
	if c5.Len() < c1.Len()*4 {
		t.Fatalf("5 refreshes collected %d ads vs %d for 1: refreshing should multiply the corpus",
			c5.Len(), c1.Len())
	}
}

func TestCrawlDeterministicCorpus(t *testing.T) {
	u, web, list := fixture(t)
	sites := web.TopSlice(8)
	a, _ := New(u, list, web, Config{Days: 1, Refreshes: 2, Parallelism: 4, Seed: 5}).Run(sites)
	b, _ := New(u, list, web, Config{Days: 1, Refreshes: 2, Parallelism: 4, Seed: 5}).Run(sites)
	if a.Len() != b.Len() {
		t.Fatalf("corpus sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, ad := range a.All() {
		if b.Get(ad.Hash) == nil {
			t.Fatalf("ad %s missing from second crawl", ad.Hash)
		}
	}
}

func TestBottomSitesYieldFewerAds(t *testing.T) {
	u, web, list := fixture(t)
	cfg := Config{Days: 1, Refreshes: 1, Parallelism: 4, Seed: 6}
	top, _ := New(u, list, web, cfg).Run(web.TopSlice(50))
	bottom, _ := New(u, list, web, cfg).Run(web.BottomSlice(50))
	if bottom.Len()*3 > top.Len() {
		t.Fatalf("bottom sites produced %d ads vs top %d; monetization gradient missing",
			bottom.Len(), top.Len())
	}
}

func TestImpressionFromURL(t *testing.T) {
	if got := impressionFromURL("http://a.com/serve?pub=x&imp=deadbeef&hop=0"); got != "deadbeef" {
		t.Fatalf("imp = %q", got)
	}
	if got := impressionFromURL("://bad"); got != "" {
		t.Fatalf("imp = %q", got)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	u, web, list := fixture(t)
	c := New(u, list, web, Config{})
	if c.Config.Parallelism != 4 || c.Config.Days != 1 || c.Config.Refreshes != 1 {
		t.Fatalf("defaults not applied: %+v", c.Config)
	}
}

func TestKeepTraffic(t *testing.T) {
	u, web, list := fixture(t)
	c := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 4, Seed: 23})
	c.KeepTraffic = true
	sites := web.TopSlice(10)
	corp, _ := c.Run(sites)

	trace := c.Traffic()
	if trace == nil {
		t.Fatal("no traffic kept")
	}
	// Every page load plus every ad-chain hop, creative, and resource: the
	// trace must be much larger than the corpus.
	if trace.Len() < corp.Len()*2 {
		t.Fatalf("trace %d transactions for %d ads", trace.Len(), corp.Len())
	}
	sum := trace.Summarize()
	if sum.Redirects == 0 {
		t.Fatal("arbitration redirects missing from trace")
	}
	if sum.Hosts < 20 {
		t.Fatalf("trace spans only %d hosts", sum.Hosts)
	}

	// Without the flag, nothing is retained.
	c2 := New(u, list, web, Config{Days: 1, Refreshes: 1, Parallelism: 2, Seed: 23})
	c2.Run(sites[:2])
	if c2.Traffic() != nil {
		t.Fatal("traffic kept without KeepTraffic")
	}
}
