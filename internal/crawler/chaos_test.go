package crawler

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"madave/internal/memnet"
	"madave/internal/resilient"
)

// fastRetry keeps chaos tests quick: microsecond backoffs, and an attempt
// deadline that bounds injected stalls while staying far above any real
// in-memory dispatch — so which attempts time out never depends on
// scheduler luck, only on the seeded fault decisions.
func fastRetry() resilient.Policy {
	return resilient.Policy{
		MaxAttempts:    3,
		BaseDelay:      time.Microsecond,
		MaxDelay:       20 * time.Microsecond,
		AttemptTimeout: 250 * time.Millisecond,
	}
}

// chaosCrawl runs one crawl over the shared fixture with the given fault
// rate and returns the stats rendered to a string plus the sorted corpus
// hashes — the two artefacts that must be byte-identical across runs.
func chaosCrawl(t *testing.T, seed uint64, rate float64) (string, string, *Stats) {
	t.Helper()
	u, web, list := fixture(t)
	cfg := Config{
		Days: 1, Refreshes: 2, Parallelism: 4, Seed: seed,
		VisitTimeout: -1, // attempt timeouts bound stalls deterministically
		Retry:        fastRetry(),
	}
	c := New(u, list, web, cfg)
	c.Transport = func() http.RoundTripper {
		return memnet.NewChaos(&memnet.Transport{U: u}, seed, memnet.UniformProfile(rate))
	}
	corp, st := c.Run(web.TopSlice(12))
	hashes := make([]string, 0, corp.Len())
	for _, ad := range corp.All() {
		hashes = append(hashes, ad.Hash)
	}
	sort.Strings(hashes)
	return fmt.Sprintf("%+v", *st), strings.Join(hashes, "\n"), st
}

// TestCrawlDeterministicUnderChaos is the heart of the fault-injection
// design: with ≥30% of requests faulted and four workers racing, two
// same-seed crawls must still produce byte-identical statistics and the
// same deduplicated corpus.
func TestCrawlDeterministicUnderChaos(t *testing.T) {
	s1, h1, st := chaosCrawl(t, 42, 0.35)
	s2, h2, _ := chaosCrawl(t, 42, 0.35)
	if s1 != s2 {
		t.Fatalf("stats diverged across same-seed runs:\n%s\n%s", s1, s2)
	}
	if h1 != h2 {
		t.Fatal("corpus hashes diverged across same-seed runs")
	}
	if h1 == "" {
		t.Fatal("chaos starved the corpus entirely")
	}
	// The fault rate is high enough that the resilience layer must have
	// worked for a living.
	if st.Retries == 0 {
		t.Fatalf("no retries recorded under 35%% faults: %+v", st)
	}
	if st.PageErrors != st.NXDomainErrors+st.TimeoutErrors+st.HTTPErrors+st.OtherErrors {
		t.Fatalf("error split does not sum: %+v", st)
	}

	// A different seed sees different faults.
	s3, _, _ := chaosCrawl(t, 43, 0.35)
	if s1 == s3 {
		t.Fatal("different seeds produced identical stats — chaos is not seeded")
	}
}

// TestCrawlBreakerCutsOffDeadHost kills one publisher host outright (every
// request resets) and checks the circuit breaker opens, sheds requests,
// and the rest of the crawl still collects ads.
func TestCrawlBreakerCutsOffDeadHost(t *testing.T) {
	u, web, list := fixture(t)
	sites := web.TopSlice(8)
	dead := sites[0].Host
	cfg := Config{
		Days: 1, Refreshes: 8, Parallelism: 1, Seed: 7,
		VisitTimeout: -1,
		Retry:        fastRetry(),
	}
	c := New(u, list, web, cfg)
	c.Transport = func() http.RoundTripper {
		ch := memnet.NewChaos(&memnet.Transport{U: u}, 7, memnet.FaultProfile{})
		ch.SetHostProfile(dead, memnet.FaultProfile{ResetRate: 1})
		return ch
	}
	corp, st := c.Run(sites)

	if st.CircuitOpens == 0 {
		t.Fatalf("breaker never opened for the dead host: %+v", st)
	}
	if st.CircuitShortCircuits == 0 {
		t.Fatalf("open breaker shed nothing: %+v", st)
	}
	if st.OtherErrors == 0 {
		t.Fatalf("reset pages not classified: %+v", st)
	}
	// The other seven sites keep producing.
	if corp.Len() == 0 {
		t.Fatal("dead host starved the whole crawl")
	}
	for _, ad := range corp.All() {
		if ad.PubHost == dead {
			t.Fatalf("harvested an ad from the dead host %s", dead)
		}
	}
}

// TestCrawlStalledHostCountsTimeouts stalls one publisher completely: each
// attempt is broken by the per-attempt deadline, the visit fails as a
// timeout, and the timeout counters record the work.
func TestCrawlStalledHostCountsTimeouts(t *testing.T) {
	u, web, list := fixture(t)
	sites := web.TopSlice(3)
	stalled := sites[0].Host
	cfg := Config{
		Days: 1, Refreshes: 2, Parallelism: 2, Seed: 9,
		VisitTimeout: -1,
		Retry:        fastRetry(),
	}
	c := New(u, list, web, cfg)
	c.Transport = func() http.RoundTripper {
		ch := memnet.NewChaos(&memnet.Transport{U: u}, 9, memnet.FaultProfile{})
		ch.SetHostProfile(stalled, memnet.FaultProfile{StallRate: 1})
		return ch
	}
	start := time.Now()
	_, st := c.Run(sites)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("stalled host was not bounded: crawl took %v", elapsed)
	}

	if st.TimeoutErrors != 2 {
		t.Fatalf("timeout errors = %d, want 2 (one per visit to the stalled host): %+v", st.TimeoutErrors, st)
	}
	if st.Timeouts < 2 {
		t.Fatalf("attempt timeouts = %d, want >= 2: %+v", st.Timeouts, st)
	}
	// Healthy sites were visited and error-free.
	if st.PagesVisited != 6 || st.PageErrors != 2 {
		t.Fatalf("visits/errors = %d/%d: %+v", st.PagesVisited, st.PageErrors, st)
	}
}
