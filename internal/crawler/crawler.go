// Package crawler orchestrates the data-collection phase of the study
// (§3.1): it visits every target site once per "day", refreshes each page
// five times, renders pages in the emulated browser, identifies
// advertisement iframes with EasyList, and snapshots each rendered ad into
// the corpus.
//
// Visits fan out over a worker pool; each worker owns its own browser and
// HTTP capture, so crawls scale with cores while staying deterministic in
// what they collect (the served content depends only on impression IDs).
package crawler

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"

	"madave/internal/browser"
	"madave/internal/corpus"
	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/netcap"
	"madave/internal/stats"
	"madave/internal/urlx"
	"madave/internal/webgen"
)

// Config parameterizes a crawl.
type Config struct {
	// Days is how many daily visits to make (the paper crawled for three
	// months; the default scales that down).
	Days int
	// Refreshes is how many times each page is reloaded per visit (the
	// paper used five).
	Refreshes int
	// Parallelism is the worker count (0 = 4).
	Parallelism int
	// Seed drives per-worker browser randomness.
	Seed uint64
}

// DefaultConfig mirrors the paper's five refreshes with a scaled-down
// duration.
func DefaultConfig() Config {
	return Config{Days: 2, Refreshes: 5, Parallelism: 4, Seed: 1}
}

// Stats aggregates crawl-wide observations.
type Stats struct {
	PagesVisited   int64
	PageErrors     int64
	FramesSeen     int64 // all iframes on crawled pages
	AdFrames       int64 // iframes EasyList classified as advertisements
	NonAdFrames    int64
	SandboxedAds   int64 // ad iframes carrying the sandbox attribute (§4.4)
	SnapshotsTaken int64
	Duplicates     int64
}

// Crawler runs crawls against a universe.
type Crawler struct {
	Universe *memnet.Universe
	List     *easylist.List
	Web      *webgen.Web
	Config   Config
	// Transport, when non-nil, supplies the HTTP transport each worker's
	// browser uses instead of the default in-memory one — e.g. a TCP
	// loopback transport from memnet.Server, so the whole crawl runs over
	// real sockets.
	Transport func() http.RoundTripper
	// KeepTraffic retains the full HTTP transaction log of the crawl
	// (§3.1: "we captured all the HTTP traffic during crawling for further
	// investigation"). After Run, the merged trace is available via
	// Traffic(). Off by default: a large crawl's trace is big.
	KeepTraffic bool

	mu      sync.Mutex
	traffic []*netcap.Capture
}

// Traffic merges the per-worker captures of the last Run into one log.
// It returns nil unless KeepTraffic was set.
func (c *Crawler) Traffic() *netcap.Capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.traffic) == 0 {
		return nil
	}
	merged := netcap.New(nil)
	for _, cap := range c.traffic {
		for _, tx := range cap.All() {
			merged.Record(tx)
		}
	}
	return merged
}

// New returns a Crawler.
func New(u *memnet.Universe, list *easylist.List, web *webgen.Web, cfg Config) *Crawler {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.Refreshes <= 0 {
		cfg.Refreshes = 1
	}
	return &Crawler{Universe: u, List: list, Web: web, Config: cfg}
}

// visit is one unit of crawl work: a (site, day, refresh) triple.
type visit struct {
	site    *webgen.Site
	day     int
	refresh int
}

// Run crawls the given sites and returns the deduplicated ad corpus plus
// crawl statistics.
func (c *Crawler) Run(sites []*webgen.Site) (*corpus.Corpus, *Stats) {
	corp := corpus.New()
	st := &Stats{}
	c.mu.Lock()
	c.traffic = nil
	c.mu.Unlock()

	work := make(chan visit, 256)
	var wg sync.WaitGroup
	for w := 0; w < c.Config.Parallelism; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			b := c.newWorkerBrowser(worker)
			// Each worker owns a match context: the EasyList engine reuses
			// its per-request scratch across the worker's whole crawl.
			ctx := easylist.NewRequestCtx()
			for v := range work {
				c.crawlPage(b, ctx, v, corp, st)
			}
		}(w)
	}
	for day := 1; day <= c.Config.Days; day++ {
		for _, s := range sites {
			for r := 0; r < c.Config.Refreshes; r++ {
				work <- visit{site: s, day: day, refresh: r}
			}
		}
	}
	close(work)
	wg.Wait()
	st.Duplicates = int64(corp.Duplicates())
	return corp, st
}

// newWorkerBrowser builds a per-worker browser with its own capture. The
// crawler browses like a real user's Firefox (the paper drove the real
// browser with Selenium).
func (c *Crawler) newWorkerBrowser(worker int) *browser.Browser {
	var rt http.RoundTripper = &memnet.Transport{U: c.Universe}
	if c.Transport != nil {
		rt = c.Transport()
	}
	cap := netcap.New(rt)
	if c.KeepTraffic {
		c.mu.Lock()
		c.traffic = append(c.traffic, cap)
		c.mu.Unlock()
	}
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := browser.New(client, browser.UserProfile())
	b.Capture = cap
	b.RNG = stats.NewRNG(c.Config.Seed).Fork(fmt.Sprintf("crawler-worker-%d", worker))
	return b
}

// crawlPage loads one page visit and snapshots its ad iframes.
func (c *Crawler) crawlPage(b *browser.Browser, ctx *easylist.RequestCtx, v visit, corp *corpus.Corpus, st *Stats) {
	pageURL := fmt.Sprintf("http://%s/?v=d%dr%d", v.site.Host, v.day, v.refresh)
	page, err := b.Load(pageURL, "")
	atomic.AddInt64(&st.PagesVisited, 1)
	if err != nil {
		atomic.AddInt64(&st.PageErrors, 1)
		return
	}

	for _, frame := range page.Frames {
		atomic.AddInt64(&st.FramesSeen, 1)
		if !c.isAdFrame(ctx, frame.URL, v.site.Host) {
			atomic.AddInt64(&st.NonAdFrames, 1)
			continue
		}
		atomic.AddInt64(&st.AdFrames, 1)
		if frame.Sandboxed {
			atomic.AddInt64(&st.SandboxedAds, 1)
		}
		ad := c.snapshot(frame, v)
		atomic.AddInt64(&st.SnapshotsTaken, 1)
		corp.Add(ad)
	}
}

// isAdFrame applies EasyList the way the paper did: the iframe src is
// matched as a subdocument request from the publisher's page.
func (c *Crawler) isAdFrame(ctx *easylist.RequestCtx, frameURL, docHost string) bool {
	blocked, _ := c.List.MatchCtx(ctx, easylist.Request{
		URL:     frameURL,
		Type:    easylist.TypeSubdocument,
		DocHost: docHost,
	})
	return blocked
}

// snapshot converts a rendered ad frame into a corpus record.
func (c *Crawler) snapshot(frame *browser.Page, v visit) *corpus.Ad {
	ad := &corpus.Ad{
		HTML:       frame.HTML(),
		FrameURL:   frame.URL,
		FinalURL:   frame.FinalURL,
		Impression: impressionFromURL(frame.URL),
		PubHost:    v.site.Host,
		PubRank:    v.site.Rank,
		Category:   string(v.site.Category),
		TLD:        v.site.TLD,
		Day:        v.day,
		Refresh:    v.refresh,
	}
	// The arbitration chain is the redirect chain's hosts, repeats
	// preserved (§4.3: the same networks buy and sell the same slot).
	for _, hop := range frame.RedirectHops {
		if h := urlx.Host(hop); h != "" {
			ad.Chain = append(ad.Chain, h)
		}
	}
	// Deduplicate the contacted-hosts list but keep order.
	seen := map[string]bool{}
	addHost := func(raw string) {
		h := urlx.Host(raw)
		if h != "" && !seen[h] {
			seen[h] = true
			ad.Hosts = append(ad.Hosts, h)
		}
	}
	for _, hop := range frame.RedirectHops {
		addHost(hop)
	}
	for _, r := range frame.AllResources() {
		addHost(r.URL)
	}
	for _, d := range frame.AllDownloads() {
		addHost(d.URL)
	}
	for _, n := range frame.AllNavigations() {
		addHost(n.Target)
	}
	return ad
}

// impressionFromURL extracts the imp query parameter from a serve URL.
func impressionFromURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Query().Get("imp")
}
