// Package crawler orchestrates the data-collection phase of the study
// (§3.1): it visits every target site once per "day", refreshes each page
// five times, renders pages in the emulated browser, identifies
// advertisement iframes with EasyList, and snapshots each rendered ad into
// the corpus.
//
// Visits fan out over a worker pool; each worker owns its own browser,
// HTTP capture, and resilience state (retry transport + per-host circuit
// breakers). Work is statically striped across workers — worker w handles
// every Parallelism-th visit — so each worker sees a deterministic request
// sequence and crawls are byte-for-byte reproducible per seed even under
// injected faults.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"madave/internal/browser"
	"madave/internal/corpus"
	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/netcap"
	"madave/internal/resilient"
	"madave/internal/stats"
	"madave/internal/urlx"
	"madave/internal/webgen"
)

// DefaultVisitTimeout bounds one page visit (document, subresources,
// scripts, child frames) when Config.VisitTimeout is zero.
const DefaultVisitTimeout = 30 * time.Second

// Config parameterizes a crawl.
type Config struct {
	// Days is how many daily visits to make (the paper crawled for three
	// months; the default scales that down).
	Days int
	// Refreshes is how many times each page is reloaded per visit (the
	// paper used five).
	Refreshes int
	// Parallelism is the worker count (0 = 4).
	Parallelism int
	// Seed drives per-worker browser randomness and retry jitter.
	Seed uint64
	// VisitTimeout is the per-visit deadline (0 = DefaultVisitTimeout,
	// negative = none). A visit that exceeds it yields a partial page; the
	// crawler harvests whatever frames survived.
	VisitTimeout time.Duration
	// Retry configures the per-request resilience layer. Zero fields take
	// resilient defaults; Seed is always overridden with Config.Seed so one
	// knob reproduces a whole crawl.
	Retry resilient.Policy
	// BreakerThreshold and BreakerCooldown parameterize each worker's
	// per-host circuit breakers (0 = resilient defaults: 5 consecutive
	// failures open a host, 10 requests shed per open period).
	BreakerThreshold int
	BreakerCooldown  int
}

// DefaultConfig mirrors the paper's five refreshes with a scaled-down
// duration.
func DefaultConfig() Config {
	return Config{Days: 2, Refreshes: 5, Parallelism: 4, Seed: 1}
}

// Stats aggregates crawl-wide observations. Every field is a sum of
// per-visit observations that depend only on (seed, URL, attempt), so two
// same-seed crawls produce identical Stats regardless of scheduling.
type Stats struct {
	PagesVisited int64
	// PageErrors counts top-level visits that failed, split by cause below
	// (PageErrors = NXDomainErrors + TimeoutErrors + HTTPErrors +
	// OtherErrors).
	PageErrors     int64
	NXDomainErrors int64 // the publisher host did not resolve
	TimeoutErrors  int64 // the visit deadline (or cancellation) ended the load
	HTTPErrors     int64 // the page came back with a 4xx/5xx status
	OtherErrors    int64 // resets, redirect loops, open breakers, the rest
	FramesSeen     int64 // all iframes on crawled pages
	AdFrames       int64 // iframes EasyList classified as advertisements
	NonAdFrames    int64
	SandboxedAds   int64 // ad iframes carrying the sandbox attribute (§4.4)
	SnapshotsTaken int64
	Duplicates     int64
	// DegradedPages counts visits that reported errors yet still yielded
	// at least one frame — partial pages the crawler harvested anyway.
	DegradedPages int64

	// Resilience-layer totals for the whole crawl (see resilient.Counters).
	Retries              int64
	Timeouts             int64
	Truncations          int64
	CircuitOpens         int64
	CircuitShortCircuits int64
}

// Crawler runs crawls against a universe.
type Crawler struct {
	Universe *memnet.Universe
	List     *easylist.List
	Web      *webgen.Web
	Config   Config
	// Transport, when non-nil, supplies the HTTP transport each worker's
	// browser uses instead of the default in-memory one — e.g. a TCP
	// loopback transport from memnet.Server, so the whole crawl runs over
	// real sockets.
	Transport func() http.RoundTripper
	// KeepTraffic retains the full HTTP transaction log of the crawl
	// (§3.1: "we captured all the HTTP traffic during crawling for further
	// investigation"). After Run, the merged trace is available via
	// Traffic(). Off by default: a large crawl's trace is big.
	KeepTraffic bool

	mu      sync.Mutex
	traffic []*netcap.Capture
}

// Traffic merges the per-worker captures of the last Run into one log.
// It returns nil unless KeepTraffic was set.
func (c *Crawler) Traffic() *netcap.Capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.traffic) == 0 {
		return nil
	}
	merged := netcap.New(nil)
	for _, cap := range c.traffic {
		for _, tx := range cap.All() {
			merged.Record(tx)
		}
	}
	return merged
}

// New returns a Crawler.
func New(u *memnet.Universe, list *easylist.List, web *webgen.Web, cfg Config) *Crawler {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.Refreshes <= 0 {
		cfg.Refreshes = 1
	}
	return &Crawler{Universe: u, List: list, Web: web, Config: cfg}
}

// visit is one unit of crawl work: a (site, day, refresh) triple.
type visit struct {
	site    *webgen.Site
	day     int
	refresh int
}

// Run crawls the given sites and returns the deduplicated ad corpus plus
// crawl statistics.
func (c *Crawler) Run(sites []*webgen.Site) (*corpus.Corpus, *Stats) {
	return c.RunContext(context.Background(), sites)
}

// RunContext is Run under a caller-supplied context: cancelling it stops
// the crawl after the in-flight visits finish. Visits are striped
// statically — worker w handles visits[i] where i%Parallelism == w — so
// each worker's request sequence (and hence its browser RNG, cookie jar,
// and circuit-breaker state) is identical run to run.
func (c *Crawler) RunContext(ctx context.Context, sites []*webgen.Site) (*corpus.Corpus, *Stats) {
	if ctx == nil {
		ctx = context.Background()
	}
	corp := corpus.New()
	st := &Stats{}
	c.mu.Lock()
	c.traffic = nil
	c.mu.Unlock()

	var visits []visit
	for day := 1; day <= c.Config.Days; day++ {
		for _, s := range sites {
			for r := 0; r < c.Config.Refreshes; r++ {
				visits = append(visits, visit{site: s, day: day, refresh: r})
			}
		}
	}

	counters := &resilient.Counters{}
	var wg sync.WaitGroup
	for w := 0; w < c.Config.Parallelism; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			b := c.newWorkerBrowser(worker, counters)
			// Each worker owns a match context: the EasyList engine reuses
			// its per-request scratch across the worker's whole crawl.
			mctx := easylist.NewRequestCtx()
			for i := worker; i < len(visits); i += c.Config.Parallelism {
				if ctx.Err() != nil {
					return
				}
				c.crawlPage(ctx, b, mctx, visits[i], corp, st)
			}
		}(w)
	}
	wg.Wait()
	st.Duplicates = int64(corp.Duplicates())
	snap := counters.Snapshot()
	st.Retries = snap.Retries
	st.Timeouts = snap.Timeouts
	st.Truncations = snap.Truncations
	st.CircuitOpens = snap.BreakerOpens
	st.CircuitShortCircuits = snap.BreakerShortCircuits
	return corp, st
}

// newWorkerBrowser builds a per-worker browser with its own capture and
// resilience stack. The crawler browses like a real user's Firefox (the
// paper drove the real browser with Selenium). The transport layers, inner
// to outer: base (memnet or custom, possibly chaos-wrapped) -> resilient
// retries/breakers -> capture — so the traffic log sees one transaction
// per logical fetch, with retries invisible to it.
func (c *Crawler) newWorkerBrowser(worker int, counters *resilient.Counters) *browser.Browser {
	var rt http.RoundTripper = &memnet.Transport{U: c.Universe}
	if c.Transport != nil {
		rt = c.Transport()
	}
	pol := c.Config.Retry
	pol.Seed = c.Config.Seed
	res := resilient.New(rt, pol, counters)
	// A breaker set per worker: striped visits give each worker a
	// deterministic request sequence, so breaker trips reproduce exactly.
	res.Breakers = resilient.NewBreakerSet(c.Config.BreakerThreshold, c.Config.BreakerCooldown)
	cap := netcap.New(res)
	if c.KeepTraffic {
		c.mu.Lock()
		c.traffic = append(c.traffic, cap)
		c.mu.Unlock()
	}
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := browser.New(client, browser.UserProfile())
	b.Capture = cap
	b.RNG = stats.NewRNG(c.Config.Seed).Fork(fmt.Sprintf("crawler-worker-%d", worker))
	return b
}

// crawlPage loads one page visit under the visit deadline and snapshots
// its ad iframes. A failed or partial load is not discarded: whatever
// frames survived are still classified and harvested (graceful
// degradation), with the failure cause tallied.
func (c *Crawler) crawlPage(ctx context.Context, b *browser.Browser, mctx *easylist.RequestCtx, v visit, corp *corpus.Corpus, st *Stats) {
	pageURL := fmt.Sprintf("http://%s/?v=d%dr%d", v.site.Host, v.day, v.refresh)
	vctx := ctx
	if t := c.visitTimeout(); t > 0 {
		var cancel context.CancelFunc
		vctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	page, err := b.LoadContext(vctx, pageURL, "")
	atomic.AddInt64(&st.PagesVisited, 1)
	if err != nil {
		atomic.AddInt64(&st.PageErrors, 1)
		classifyPageError(st, err)
	} else if page != nil && page.Status >= 400 {
		atomic.AddInt64(&st.PageErrors, 1)
		atomic.AddInt64(&st.HTTPErrors, 1)
	}
	if page == nil {
		return
	}
	if (err != nil || len(page.Errors) > 0) && len(page.Frames) > 0 {
		atomic.AddInt64(&st.DegradedPages, 1)
	}

	for _, frame := range page.Frames {
		atomic.AddInt64(&st.FramesSeen, 1)
		if !c.isAdFrame(mctx, frame.URL, v.site.Host) {
			atomic.AddInt64(&st.NonAdFrames, 1)
			continue
		}
		atomic.AddInt64(&st.AdFrames, 1)
		if frame.Sandboxed {
			atomic.AddInt64(&st.SandboxedAds, 1)
		}
		ad := c.snapshot(frame, v)
		atomic.AddInt64(&st.SnapshotsTaken, 1)
		corp.Add(ad)
	}
}

// visitTimeout resolves Config.VisitTimeout (0 = default, negative = none).
func (c *Crawler) visitTimeout() time.Duration {
	switch {
	case c.Config.VisitTimeout < 0:
		return 0
	case c.Config.VisitTimeout == 0:
		return DefaultVisitTimeout
	}
	return c.Config.VisitTimeout
}

// classifyPageError tallies a failed top-level visit into the split error
// counters.
func classifyPageError(st *Stats, err error) {
	var nx *memnet.NXDomainError
	switch {
	case errors.As(err, &nx):
		atomic.AddInt64(&st.NXDomainErrors, 1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		atomic.AddInt64(&st.TimeoutErrors, 1)
	default:
		atomic.AddInt64(&st.OtherErrors, 1)
	}
}

// isAdFrame applies EasyList the way the paper did: the iframe src is
// matched as a subdocument request from the publisher's page.
func (c *Crawler) isAdFrame(ctx *easylist.RequestCtx, frameURL, docHost string) bool {
	blocked, _ := c.List.MatchCtx(ctx, easylist.Request{
		URL:     frameURL,
		Type:    easylist.TypeSubdocument,
		DocHost: docHost,
	})
	return blocked
}

// snapshot converts a rendered ad frame into a corpus record.
func (c *Crawler) snapshot(frame *browser.Page, v visit) *corpus.Ad {
	ad := &corpus.Ad{
		HTML:       frame.HTML(),
		FrameURL:   frame.URL,
		FinalURL:   frame.FinalURL,
		Impression: impressionFromURL(frame.URL),
		PubHost:    v.site.Host,
		PubRank:    v.site.Rank,
		Category:   string(v.site.Category),
		TLD:        v.site.TLD,
		Day:        v.day,
		Refresh:    v.refresh,
	}
	// The arbitration chain is the redirect chain's hosts, repeats
	// preserved (§4.3: the same networks buy and sell the same slot).
	for _, hop := range frame.RedirectHops {
		if h := urlx.Host(hop); h != "" {
			ad.Chain = append(ad.Chain, h)
		}
	}
	// Deduplicate the contacted-hosts list but keep order.
	seen := map[string]bool{}
	addHost := func(raw string) {
		h := urlx.Host(raw)
		if h != "" && !seen[h] {
			seen[h] = true
			ad.Hosts = append(ad.Hosts, h)
		}
	}
	for _, hop := range frame.RedirectHops {
		addHost(hop)
	}
	for _, r := range frame.AllResources() {
		addHost(r.URL)
	}
	for _, d := range frame.AllDownloads() {
		addHost(d.URL)
	}
	for _, n := range frame.AllNavigations() {
		addHost(n.Target)
	}
	return ad
}

// impressionFromURL extracts the imp query parameter from a serve URL.
func impressionFromURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Query().Get("imp")
}
