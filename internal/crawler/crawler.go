// Package crawler orchestrates the data-collection phase of the study
// (§3.1): it visits every target site once per "day", refreshes each page
// five times, renders pages in the emulated browser, identifies
// advertisement iframes with EasyList, and snapshots each rendered ad into
// the corpus.
//
// Visits fan out over a worker pool; each worker owns its own browser,
// HTTP capture, and resilience state (retry transport + per-host circuit
// breakers). Work is statically striped across workers — worker w handles
// every Parallelism-th visit — so each worker sees a deterministic request
// sequence and crawls are byte-for-byte reproducible per seed even under
// injected faults.
package crawler

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"madave/internal/browser"
	"madave/internal/corpus"
	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/netcap"
	"madave/internal/resilient"
	"madave/internal/stats"
	"madave/internal/telemetry"
	"madave/internal/urlx"
	"madave/internal/webgen"
)

// DefaultVisitTimeout bounds one page visit (document, subresources,
// scripts, child frames) when Config.VisitTimeout is zero.
const DefaultVisitTimeout = 30 * time.Second

// Config parameterizes a crawl.
type Config struct {
	// Days is how many daily visits to make (the paper crawled for three
	// months; the default scales that down).
	Days int
	// Refreshes is how many times each page is reloaded per visit (the
	// paper used five).
	Refreshes int
	// Parallelism is the worker count (0 = 4).
	Parallelism int
	// Seed drives per-worker browser randomness and retry jitter.
	Seed uint64
	// VisitTimeout is the per-visit deadline (0 = DefaultVisitTimeout,
	// negative = none). A visit that exceeds it yields a partial page; the
	// crawler harvests whatever frames survived.
	VisitTimeout time.Duration
	// Retry configures the per-request resilience layer. Zero fields take
	// resilient defaults; Seed is always overridden with Config.Seed so one
	// knob reproduces a whole crawl.
	Retry resilient.Policy
	// BreakerThreshold and BreakerCooldown parameterize each worker's
	// per-host circuit breakers (0 = resilient defaults: 5 consecutive
	// failures open a host, 10 requests shed per open period).
	BreakerThreshold int
	BreakerCooldown  int
}

// DefaultConfig mirrors the paper's five refreshes with a scaled-down
// duration.
func DefaultConfig() Config {
	return Config{Days: 2, Refreshes: 5, Parallelism: 4, Seed: 1}
}

// Stats aggregates crawl-wide observations. Every field is a sum of
// per-visit observations that depend only on (seed, URL, attempt), so two
// same-seed crawls produce identical Stats regardless of scheduling.
//
// Stats is a view: the crawler accumulates these counts in a telemetry
// registry (the caller's via Crawler.Telemetry, or a private one) and
// materializes the struct from a registry snapshot when the run ends, so
// the struct and any exported metrics can never disagree.
type Stats struct {
	PagesVisited int64
	// PageErrors counts top-level visits that failed, split by cause below
	// (PageErrors = NXDomainErrors + TimeoutErrors + HTTPErrors +
	// OtherErrors).
	PageErrors     int64
	NXDomainErrors int64 // the publisher host did not resolve
	TimeoutErrors  int64 // the visit deadline (or cancellation) ended the load
	HTTPErrors     int64 // the page came back with a 4xx/5xx status
	OtherErrors    int64 // resets, redirect loops, open breakers, the rest
	FramesSeen     int64 // all iframes on crawled pages
	AdFrames       int64 // iframes EasyList classified as advertisements
	NonAdFrames    int64
	SandboxedAds   int64 // ad iframes carrying the sandbox attribute (§4.4)
	SnapshotsTaken int64
	Duplicates     int64
	// DegradedPages counts visits that reported errors yet still yielded
	// at least one frame — partial pages the crawler harvested anyway.
	DegradedPages int64

	// Resilience-layer totals for the whole crawl (see resilient.Counters).
	Retries              int64
	Timeouts             int64
	Truncations          int64
	CircuitOpens         int64
	CircuitShortCircuits int64
}

// Crawler runs crawls against a universe.
type Crawler struct {
	Universe *memnet.Universe
	List     *easylist.List
	Web      *webgen.Web
	Config   Config
	// Transport, when non-nil, supplies the HTTP transport each worker's
	// browser uses instead of the default in-memory one — e.g. a TCP
	// loopback transport from memnet.Server, so the whole crawl runs over
	// real sockets.
	Transport func() http.RoundTripper
	// KeepTraffic retains the full HTTP transaction log of the crawl
	// (§3.1: "we captured all the HTTP traffic during crawling for further
	// investigation"). After Run, the merged trace is available via
	// Traffic(). Off by default: a large crawl's trace is big.
	KeepTraffic bool
	// Telemetry, when non-nil, receives the crawl's metrics (counters,
	// stage latency histograms) and — if its tracer is enabled — the span
	// tree of every visit. When nil the crawler uses a private registry, so
	// Stats accounting is identical either way and telemetry can never
	// steer the crawl.
	Telemetry *telemetry.Set

	mu       sync.Mutex
	traffic  []*netcap.Capture
	smetrics *crawlMetrics // lazy, CrawlOne's shared observational handle
}

// Traffic merges the per-worker captures of the last Run into one log.
// It returns nil unless KeepTraffic was set.
func (c *Crawler) Traffic() *netcap.Capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.traffic) == 0 {
		return nil
	}
	merged := netcap.New(nil)
	for _, cap := range c.traffic {
		for _, tx := range cap.All() {
			merged.Record(tx)
		}
	}
	return merged
}

// New returns a Crawler.
func New(u *memnet.Universe, list *easylist.List, web *webgen.Web, cfg Config) *Crawler {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.Refreshes <= 0 {
		cfg.Refreshes = 1
	}
	return &Crawler{Universe: u, List: list, Web: web, Config: cfg}
}

// crawlMetrics holds the registry instruments the crawl hot path bumps.
// Handles are fetched once per run; each event is one atomic add.
type crawlMetrics struct {
	tel        *telemetry.Set
	pages      *telemetry.Counter
	pageErrors *telemetry.Counter
	errNX      *telemetry.Counter
	errTimeout *telemetry.Counter
	errHTTP    *telemetry.Counter
	errOther   *telemetry.Counter
	adFrames   *telemetry.Counter
	nonAd      *telemetry.Counter
	sandboxed  *telemetry.Counter
	snapshots  *telemetry.Counter
	degraded   *telemetry.Counter
}

func newCrawlMetrics(tel *telemetry.Set) *crawlMetrics {
	cause := func(v string) telemetry.Label { return telemetry.L("cause", v) }
	kind := func(v string) telemetry.Label { return telemetry.L("kind", v) }
	return &crawlMetrics{
		tel:        tel,
		pages:      tel.Counter("crawl_pages_visited_total"),
		pageErrors: tel.Counter("crawl_page_errors_total"),
		errNX:      tel.Counter("crawl_page_error_causes_total", cause("nxdomain")),
		errTimeout: tel.Counter("crawl_page_error_causes_total", cause("timeout")),
		errHTTP:    tel.Counter("crawl_page_error_causes_total", cause("http")),
		errOther:   tel.Counter("crawl_page_error_causes_total", cause("other")),
		adFrames:   tel.Counter("crawl_frames_total", kind("ad")),
		nonAd:      tel.Counter("crawl_frames_total", kind("nonad")),
		sandboxed:  tel.Counter("crawl_sandboxed_ads_total"),
		snapshots:  tel.Counter("crawl_snapshots_total"),
		degraded:   tel.Counter("crawl_degraded_pages_total"),
	}
}

// stats materializes the Stats view from the registry counters plus the
// resilience-layer snapshot.
func (m *crawlMetrics) stats(res resilient.Counters) *Stats {
	return &Stats{
		PagesVisited:         m.pages.Value(),
		PageErrors:           m.pageErrors.Value(),
		NXDomainErrors:       m.errNX.Value(),
		TimeoutErrors:        m.errTimeout.Value(),
		HTTPErrors:           m.errHTTP.Value(),
		OtherErrors:          m.errOther.Value(),
		FramesSeen:           m.adFrames.Value() + m.nonAd.Value(),
		AdFrames:             m.adFrames.Value(),
		NonAdFrames:          m.nonAd.Value(),
		SandboxedAds:         m.sandboxed.Value(),
		SnapshotsTaken:       m.snapshots.Value(),
		DegradedPages:        m.degraded.Value(),
		Retries:              res.Retries,
		Timeouts:             res.Timeouts,
		Truncations:          res.Truncations,
		CircuitOpens:         res.BreakerOpens,
		CircuitShortCircuits: res.BreakerShortCircuits,
	}
}

// Run crawls the given sites and returns the deduplicated ad corpus plus
// crawl statistics.
func (c *Crawler) Run(sites []*webgen.Site) (*corpus.Corpus, *Stats) {
	return c.RunContext(context.Background(), sites)
}

// RunContext is Run under a caller-supplied context: cancelling it stops
// the crawl after the in-flight visits finish. Visits are striped
// statically — worker w handles visits[i] where i%Parallelism == w — so
// each worker's request sequence (and hence its browser RNG, cookie jar,
// and circuit-breaker state) is identical run to run.
func (c *Crawler) RunContext(ctx context.Context, sites []*webgen.Site) (*corpus.Corpus, *Stats) {
	if ctx == nil {
		ctx = context.Background()
	}
	corp := corpus.New()
	tel := c.Telemetry
	if tel == nil {
		// A private registry keeps the accounting path identical whether or
		// not the caller wants telemetry out.
		tel = telemetry.New(c.Config.Seed)
	}
	m := newCrawlMetrics(tel)
	c.mu.Lock()
	c.traffic = nil
	c.mu.Unlock()

	visits := c.Visits(sites)
	tel.Gauge("crawl_visits_planned").Set(int64(len(visits)))
	tel.Gauge("crawl_workers").Set(int64(c.Config.Parallelism))

	counters := &resilient.Counters{}
	var wg sync.WaitGroup
	for w := 0; w < c.Config.Parallelism; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			b := c.newWorkerBrowser(worker, counters)
			// Each worker owns a match context: the EasyList engine reuses
			// its per-request scratch across the worker's whole crawl.
			mctx := easylist.NewRequestCtx()
			for i := worker; i < len(visits); i += c.Config.Parallelism {
				if ctx.Err() != nil {
					return
				}
				c.crawlPage(ctx, b, mctx, visits[i], corp, m)
			}
		}(w)
	}
	wg.Wait()
	st := m.stats(counters.Snapshot())
	st.Duplicates = int64(corp.Duplicates())
	tel.Counter("crawl_duplicates_total").Add(st.Duplicates)
	return corp, st
}

// newWorkerBrowser builds a per-worker browser with its own capture and
// resilience stack. The crawler browses like a real user's Firefox (the
// paper drove the real browser with Selenium). The transport layers, inner
// to outer: base (memnet or custom, possibly chaos-wrapped) -> resilient
// retries/breakers -> capture — so the traffic log sees one transaction
// per logical fetch, with retries invisible to it.
func (c *Crawler) newWorkerBrowser(worker int, counters *resilient.Counters) *browser.Browser {
	var rt http.RoundTripper = &memnet.Transport{U: c.Universe, Tel: c.Telemetry}
	if c.Transport != nil {
		rt = c.Transport()
	}
	pol := c.Config.Retry
	pol.Seed = c.Config.Seed
	res := resilient.New(rt, pol, counters)
	res.Tel = c.Telemetry
	// A breaker set per worker: striped visits give each worker a
	// deterministic request sequence, so breaker trips reproduce exactly.
	res.Breakers = resilient.NewBreakerSet(c.Config.BreakerThreshold, c.Config.BreakerCooldown)
	cap := netcap.New(res)
	if c.KeepTraffic {
		c.mu.Lock()
		c.traffic = append(c.traffic, cap)
		c.mu.Unlock()
	}
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := browser.New(client, browser.UserProfile())
	b.Capture = cap
	b.Tel = c.Telemetry
	b.RNG = stats.NewRNG(c.Config.Seed).Fork(fmt.Sprintf("crawler-worker-%d", worker))
	return b
}

// crawlPage loads one page visit and folds the observation into the crawl
// metrics and corpus. The observation itself (visitOnce) is shared with the
// streaming service's hermetic CrawlOne, so both paths classify and harvest
// identically.
func (c *Crawler) crawlPage(ctx context.Context, b *browser.Browser, mctx *easylist.RequestCtx, v Visit, corp *corpus.Corpus, m *crawlMetrics) {
	out := c.visitOnce(ctx, m.tel, b, mctx, v)
	m.record(out)
	for _, ha := range out.Ads {
		corp.Add(ha.Ad)
	}
}

// record tallies one visit outcome into the crawl counters.
func (m *crawlMetrics) record(out *VisitOutcome) {
	m.pages.Inc()
	if out.PageError {
		m.pageErrors.Inc()
		switch out.ErrCause {
		case "nxdomain":
			m.errNX.Inc()
		case "timeout":
			m.errTimeout.Inc()
		case "http":
			m.errHTTP.Inc()
		default:
			m.errOther.Inc()
		}
	}
	if out.Degraded {
		m.degraded.Inc()
	}
	m.nonAd.Add(int64(out.NonAd))
	for _, ha := range out.Ads {
		m.adFrames.Inc()
		if ha.Sandboxed {
			m.sandboxed.Inc()
		}
		m.snapshots.Inc()
	}
}

// visitTimeout resolves Config.VisitTimeout (0 = default, negative = none).
func (c *Crawler) visitTimeout() time.Duration {
	switch {
	case c.Config.VisitTimeout < 0:
		return 0
	case c.Config.VisitTimeout == 0:
		return DefaultVisitTimeout
	}
	return c.Config.VisitTimeout
}

// isAdFrame applies EasyList the way the paper did: the iframe src is
// matched as a subdocument request from the publisher's page.
func (c *Crawler) isAdFrame(ctx *easylist.RequestCtx, frameURL, docHost string) bool {
	blocked, _ := c.List.MatchCtx(ctx, easylist.Request{
		URL:     frameURL,
		Type:    easylist.TypeSubdocument,
		DocHost: docHost,
	})
	return blocked
}

// snapshot converts a rendered ad frame into a corpus record.
func (c *Crawler) snapshot(frame *browser.Page, v Visit) *corpus.Ad {
	ad := &corpus.Ad{
		HTML:       frame.HTML(),
		FrameURL:   frame.URL,
		FinalURL:   frame.FinalURL,
		Impression: impressionFromURL(frame.URL),
		PubHost:    v.Site.Host,
		PubRank:    v.Site.Rank,
		Category:   string(v.Site.Category),
		TLD:        v.Site.TLD,
		Day:        v.Day,
		Refresh:    v.Refresh,
	}
	// The corpus key is computed here, not lazily at corpus.Add time: the
	// streaming service deduplicates and journals by hash without ever
	// building a corpus.
	ad.Hash = corpus.HashHTML(ad.HTML)
	// The arbitration chain is the redirect chain's hosts, repeats
	// preserved (§4.3: the same networks buy and sell the same slot).
	for _, hop := range frame.RedirectHops {
		if h := urlx.Host(hop); h != "" {
			ad.Chain = append(ad.Chain, h)
		}
	}
	// Deduplicate the contacted-hosts list but keep order.
	seen := map[string]bool{}
	addHost := func(raw string) {
		h := urlx.Host(raw)
		if h != "" && !seen[h] {
			seen[h] = true
			ad.Hosts = append(ad.Hosts, h)
		}
	}
	for _, hop := range frame.RedirectHops {
		addHost(hop)
	}
	for _, r := range frame.AllResources() {
		addHost(r.URL)
	}
	for _, d := range frame.AllDownloads() {
		addHost(d.URL)
	}
	for _, n := range frame.AllNavigations() {
		addHost(n.Target)
	}
	return ad
}

// impressionFromURL extracts the imp query parameter from a serve URL.
func impressionFromURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Query().Get("imp")
}
