package crawler

import (
	"net/http"
	"testing"

	"madave/internal/memnet"
)

// TestCrawlOverRealTCP runs the crawl over actual loopback sockets: the
// universe is served by a net/http server, and every worker's browser dials
// it through a host-resolving transport. This exercises the same handler
// code as the in-memory path but through the real network stack.
func TestCrawlOverRealTCP(t *testing.T) {
	u, web, list := fixture(t)

	srv, err := memnet.StartServer(u)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := Config{Days: 1, Refreshes: 1, Parallelism: 4, Seed: 9}
	c := New(u, list, web, cfg)
	c.Transport = func() http.RoundTripper { return srv.TCPClient().Transport }

	sites := web.TopSlice(10)
	corp, st := c.Run(sites)
	if st.PageErrors != 0 {
		t.Fatalf("page errors over TCP: %d", st.PageErrors)
	}
	if corp.Len() == 0 {
		t.Fatal("no ads collected over TCP")
	}

	// The corpus must be identical to the in-memory crawl: the transport
	// must not change what is measured.
	mem := New(u, list, web, cfg)
	memCorp, _ := mem.Run(sites)
	if corp.Len() != memCorp.Len() {
		t.Fatalf("TCP corpus %d != in-memory corpus %d", corp.Len(), memCorp.Len())
	}
	for _, ad := range corp.All() {
		other := memCorp.Get(ad.Hash)
		if other == nil {
			t.Fatalf("ad %s missing from in-memory crawl", ad.Hash)
		}
		if len(ad.Chain) != len(other.Chain) {
			t.Fatalf("chain lengths differ for %s: %d vs %d",
				ad.Impression, len(ad.Chain), len(other.Chain))
		}
	}
}
