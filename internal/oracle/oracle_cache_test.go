package oracle

import (
	"context"
	"fmt"
	"testing"

	"madave/internal/avscan"
	"madave/internal/blacklist"
	"madave/internal/corpus"
	"madave/internal/honeyclient"
)

// TestClassifyCorpusPreCancelled asserts a cancelled context never burns an
// Incident slot: zero ads scanned, zero incidents, no degraded verdicts.
func TestClassifyCorpusPreCancelled(t *testing.T) {
	ora, _, corp := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := ora.ClassifyCorpusContext(ctx, corp)
	if res.Scanned != 0 {
		t.Fatalf("pre-cancelled context scanned %d ads", res.Scanned)
	}
	if res.MaliciousCount() != 0 || len(res.Incidents) != 0 || res.Degraded != 0 {
		t.Fatalf("pre-cancelled context produced verdicts: %+v", res)
	}
}

// TestCachedOracleMatchesUncached is the per-ad form of the study-level
// determinism guarantee: an oracle with all three caches enabled returns
// verdicts identical to the shared uncached fixture, ad for ad, and the
// repeated pass actually hits the caches.
func TestCachedOracleMatchesUncached(t *testing.T) {
	plain, srv, corp := fixture(t)

	hc := honeyclient.New(fixU, 11)
	hc.EnableCache(0)
	lists := blacklist.Build(srv.Eco, 11)
	lists.EnableMemo(0, nil)
	av := avscan.New(11)
	av.EnableCache(0, nil)
	cached := New(hc, lists, av)

	key := func(inc Incident) string {
		return fmt.Sprintf("%s|%s|%s", inc.AdHash, inc.Category, inc.Evidence)
	}
	for pass := 0; pass < 2; pass++ {
		for i, ad := range corp.All() {
			if i%7 != 0 { // sample: the fixture corpus is large
				continue
			}
			want := key(plain.Classify(ad))
			if got := key(cached.Classify(ad)); got != want {
				t.Fatalf("pass %d: cached verdict diverged:\n  got  %s\n  want %s", pass, got, want)
			}
		}
	}
	if st, ok := hc.CacheStats(); !ok || st.Hits == 0 {
		t.Fatalf("honeyclient cache never hit: %+v", st)
	}
	if st, ok := lists.MemoStats(); !ok || st.Hits == 0 {
		t.Fatalf("blacklist memo never hit: %+v", st)
	}
}

// BenchmarkClassifyReport measures the per-ad hot path of the Table-1
// precedence walk; the hosts slice should allocate exactly once.
func BenchmarkClassifyReport(b *testing.B) {
	ora := New(nil, blacklist.New(), avscan.New(1))
	ad := &corpus.Ad{Hash: "bench", Hosts: []string{
		"pub.example.com", "srv.adnet00.com", "cdn.adnet00.com", "land.example.net",
	}}
	rep := &honeyclient.Report{Hosts: []string{
		"srv.adnet00.com", "cdn.adnet00.com", "land.example.net", "track.example.org",
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ora.classifyReport(ad, rep)
	}
}
