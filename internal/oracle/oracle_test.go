package oracle

import (
	"sync"
	"testing"

	"madave/internal/adnet"
	"madave/internal/adserver"
	"madave/internal/avscan"
	"madave/internal/blacklist"
	"madave/internal/corpus"
	"madave/internal/crawler"
	"madave/internal/easylist"
	"madave/internal/honeyclient"
	"madave/internal/memnet"
	"madave/internal/webgen"
)

var (
	onceFix sync.Once
	fixU    *memnet.Universe
	fixSrv  *adserver.Server
	fixOra  *Oracle
	fixCorp *corpus.Corpus
)

func fixture(t *testing.T) (*Oracle, *adserver.Server, *corpus.Corpus) {
	t.Helper()
	onceFix.Do(func() {
		web, err := webgen.Generate(webgen.DefaultConfig())
		if err != nil {
			panic(err)
		}
		eco, err := adnet.Generate(adnet.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixSrv = adserver.New(eco, web, 11)
		fixU = memnet.NewUniverse()
		fixSrv.Install(fixU)
		list, err := easylist.ParseString(fixSrv.BuildEasyList())
		if err != nil {
			panic(err)
		}
		fixOra = New(
			honeyclient.New(fixU, 11),
			blacklist.Build(eco, 11),
			avscan.New(11),
		)

		// Crawl a slice big enough to contain malicious impressions.
		cr := crawler.New(fixU, list, web, crawler.Config{Days: 1, Refreshes: 3, Parallelism: 8, Seed: 11})
		fixCorp, _ = cr.Run(web.TopSlice(150))
	})
	return fixOra, fixSrv, fixCorp
}

// groundTruthKind resolves an ad's true campaign kind via the server.
func groundTruthKind(t *testing.T, srv *adserver.Server, ad *corpus.Ad) adnet.Kind {
	t.Helper()
	d, ok := srv.Decide(ad.PubHost, ad.Impression)
	if !ok {
		t.Fatalf("no ground truth for %s", ad.Impression)
	}
	return d.Campaign.Kind
}

// expectedCategory maps ground-truth kinds to the Table-1 category the
// oracle should assign.
func expectedCategory(k adnet.Kind) Category {
	switch k {
	case adnet.KindBlacklisted:
		return CatBlacklists
	case adnet.KindLinkHijack:
		return CatSuspRedirect
	case adnet.KindCloaking:
		return CatHeuristics
	case adnet.KindDriveBy, adnet.KindDeceptive:
		return CatMaliciousExe
	case adnet.KindMaliciousFlash:
		return CatMaliciousSWF
	case adnet.KindModelOnly:
		return CatModel
	default:
		return CatClean
	}
}

func TestClassifyAgainstGroundTruth(t *testing.T) {
	ora, srv, corp := fixture(t)

	correct, wrong, total := 0, 0, 0
	seenMalKinds := map[adnet.Kind]bool{}
	for _, ad := range corp.All() {
		kind := groundTruthKind(t, srv, ad)
		want := expectedCategory(kind)
		// Classify a sample of benign ads (they dominate) but every
		// malicious one.
		if want == CatClean && total%25 != 0 {
			total++
			continue
		}
		total++
		inc := ora.Classify(ad)
		if inc.Category == want {
			correct++
			if want != CatClean {
				seenMalKinds[kind] = true
			}
		} else {
			wrong++
			t.Logf("misclassified kind=%s want=%s got=%s evidence=%q",
				kind, want, inc.Category, inc.Evidence)
		}
	}
	if wrong > correct/20 {
		t.Fatalf("oracle accuracy too low: %d correct, %d wrong", correct, wrong)
	}
	if len(seenMalKinds) < 2 {
		t.Fatalf("crawl sample exercised too few malicious kinds: %v (grow the fixture)", seenMalKinds)
	}
}

func TestClassifyCorpusAggregates(t *testing.T) {
	ora, srv, corp := fixture(t)
	res := ora.ClassifyCorpus(corp)
	if res.Scanned != corp.Len() {
		t.Fatalf("scanned %d of %d", res.Scanned, corp.Len())
	}
	// Compare with ground truth counts.
	truthMal := 0
	for _, ad := range corp.All() {
		if groundTruthKind(t, srv, ad).IsMalicious() {
			truthMal++
		}
	}
	got := res.MaliciousCount()
	if got < truthMal*9/10 || got > truthMal*11/10+1 {
		t.Fatalf("oracle found %d incidents, ground truth %d", got, truthMal)
	}
	if len(res.Incidents) != got {
		t.Fatalf("incident list %d != count %d", len(res.Incidents), got)
	}
	sum := 0
	for _, c := range res.ByCategory {
		sum += c
	}
	if sum != got {
		t.Fatalf("category sum %d != total %d", sum, got)
	}
	if res.MaliciousRate() <= 0 || res.MaliciousRate() > 0.1 {
		t.Fatalf("malicious rate = %f", res.MaliciousRate())
	}
}

func TestIncidentFields(t *testing.T) {
	ora, _, corp := fixture(t)
	res := ora.ClassifyCorpus(corp)
	if len(res.Incidents) == 0 {
		t.Skip("no incidents in this sample")
	}
	for _, inc := range res.Incidents {
		if inc.AdHash == "" || inc.Evidence == "" || inc.Report == nil {
			t.Fatalf("incident incomplete: %+v", inc)
		}
		if !inc.Malicious() {
			t.Fatal("clean incident in list")
		}
	}
}

func TestCategoriesOrder(t *testing.T) {
	cats := Categories()
	if len(cats) != 6 || cats[0] != CatBlacklists || cats[5] != CatModel {
		t.Fatalf("categories = %v", cats)
	}
}

func TestCleanVerdict(t *testing.T) {
	ora, srv, corp := fixture(t)
	for _, ad := range corp.All() {
		if groundTruthKind(t, srv, ad) == adnet.KindBenign {
			inc := ora.Classify(ad)
			if inc.Malicious() {
				t.Fatalf("benign ad classified %s (%s)", inc.Category, inc.Evidence)
			}
			return
		}
	}
	t.Fatal("no benign ad in corpus")
}

func TestEmptyCorpus(t *testing.T) {
	ora, _, _ := fixture(t)
	res := ora.ClassifyCorpus(corpus.New())
	if res.Scanned != 0 || res.MaliciousCount() != 0 || res.MaliciousRate() != 0 {
		t.Fatalf("empty corpus result: %+v", res)
	}
}

func TestClassifySnapshotAgreesWithLive(t *testing.T) {
	ora, srv, corp := fixture(t)
	checked := 0
	disagreements := 0
	for _, ad := range corp.All() {
		kind := groundTruthKind(t, srv, ad)
		// Snapshot analysis only sees post-render HTML; kinds whose
		// behaviour happens during the serve chain still reproduce because
		// the snapshot carries the creative's script.
		if kind == adnet.KindBenign && checked%40 != 0 {
			checked++
			continue
		}
		checked++
		live := ora.Classify(ad)
		snap := ora.ClassifySnapshot(ad)
		if live.Malicious() != snap.Malicious() {
			disagreements++
			t.Logf("disagreement kind=%s live=%s snap=%s", kind, live.Category, snap.Category)
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	// Cloaking ads may render differently live vs snapshot (the snapshot
	// was taken by the user-profile crawler, which saw the benign side);
	// everything else should agree.
	if disagreements > checked/10 {
		t.Fatalf("%d/%d live-vs-snapshot disagreements", disagreements, checked)
	}
}

// TestClassifyEveryKindViaSnapshot drives every classifyReport branch with
// a synthetic snapshot per campaign kind — independent of which kinds the
// crawl sample happened to serve.
func TestClassifyEveryKindViaSnapshot(t *testing.T) {
	ora, srv, _ := fixture(t)
	wantByKind := map[adnet.Kind]Category{
		adnet.KindBenign:         CatClean,
		adnet.KindBlacklisted:    CatBlacklists,
		adnet.KindLinkHijack:     CatSuspRedirect,
		adnet.KindCloaking:       CatHeuristics,
		adnet.KindDriveBy:        CatMaliciousExe,
		adnet.KindDeceptive:      CatMaliciousExe,
		adnet.KindMaliciousFlash: CatMaliciousSWF,
		adnet.KindModelOnly:      CatModel,
	}
	covered := map[adnet.Kind]bool{}
	for _, c := range srv.Eco.Campaigns {
		want, ok := wantByKind[c.Kind]
		if !ok || covered[c.Kind] {
			continue
		}
		covered[c.Kind] = true
		imp := "cafe0000cafe0000"
		ad := &corpus.Ad{
			HTML:     adserver.CreativeHTML(c, imp, 0),
			FinalURL: "http://" + c.CreativeHost + "/creative?imp=" + imp,
			Hosts:    []string{c.CreativeHost},
		}
		ad.Hash = corpus.HashHTML(ad.HTML)
		inc := ora.ClassifySnapshot(ad)
		if inc.Category != want {
			t.Errorf("kind %s: classified %s (want %s), evidence %q",
				c.Kind, inc.Category, want, inc.Evidence)
		}
		if want != CatClean && inc.Evidence == "" {
			t.Errorf("kind %s: missing evidence", c.Kind)
		}
	}
	if len(covered) != len(wantByKind) {
		t.Fatalf("covered %d/%d kinds: %v", len(covered), len(wantByKind), covered)
	}
}
