// Package oracle combines the detection components of §3.2 —
// the honeyclient (Wepawet), the 49-list blacklist tracker, and the
// 51-engine AV scanner (VirusTotal) — into the classifier that turns an
// advertisement into a Table-1 incident (or a clean verdict). A fourth,
// structural component rides alongside when the honeyclient's flow-graph
// oracle is enabled: its verdicts land in separate Result fields and never
// perturb the Table-1 attribution, so graph-on and graph-off runs produce
// byte-identical base statistics.
//
// An advertisement can trigger several detectors at once; like the paper's
// Table 1, each ad is attributed to exactly one category, in the table's
// order of precedence.
package oracle

import (
	"context"
	"sync"
	"sync/atomic"

	"madave/internal/avscan"
	"madave/internal/blacklist"
	"madave/internal/corpus"
	"madave/internal/flowgraph"
	"madave/internal/honeyclient"
	"madave/internal/telemetry"
)

// Category is a Table-1 classification bucket.
type Category string

// Categories, in Table 1 order (which is also attribution precedence).
const (
	CatBlacklists   Category = "blacklists"
	CatSuspRedirect Category = "suspicious-redirections"
	CatHeuristics   Category = "heuristics"
	CatMaliciousExe Category = "malicious-executables"
	CatMaliciousSWF Category = "malicious-flash"
	CatModel        Category = "model-detection"
	CatClean        Category = "clean"
)

// Categories returns the malicious categories in Table 1 order.
func Categories() []Category {
	return []Category{
		CatBlacklists, CatSuspRedirect, CatHeuristics,
		CatMaliciousExe, CatMaliciousSWF, CatModel,
	}
}

// Incident is the oracle's verdict for one advertisement.
type Incident struct {
	AdHash   string
	Category Category
	// Evidence is a short human-readable justification.
	Evidence string
	// Report is the honeyclient analysis backing the verdict.
	Report *honeyclient.Report
}

// Malicious reports whether the verdict is an incident.
func (i *Incident) Malicious() bool { return i.Category != CatClean }

// GraphMalicious reports whether the flow-graph classifier flagged the ad.
// Always false when the graph oracle is disabled; never affects Category.
func (i *Incident) GraphMalicious() bool {
	return i.Report != nil && i.Report.Graph != nil && i.Report.Graph.Verdict.Malicious
}

// Oracle is the combined classifier.
type Oracle struct {
	Honey   *honeyclient.Honeyclient
	Lists   *blacklist.Tracker
	Scanner *avscan.Scanner
	// Parallelism bounds concurrent classifications in ClassifyCorpus.
	Parallelism int
	// TemporalBlacklists makes the blacklist check honor per-listing
	// discovery days (blacklist.BuildTemporal): an ad observed on crawl
	// day D is only matched against listings the providers already knew by
	// day D. Off by default (the paper's steady-state, post-crawl oracle).
	TemporalBlacklists bool
	// Tel, when non-nil, records an oracle.classify span per advertisement
	// (rooting the analysis-side span tree). Verdicts never depend on it.
	Tel *telemetry.Set
}

// New assembles an oracle.
func New(h *honeyclient.Honeyclient, t *blacklist.Tracker, s *avscan.Scanner) *Oracle {
	return &Oracle{Honey: h, Lists: t, Scanner: s, Parallelism: 4}
}

// Classify analyzes one corpus advertisement: the honeyclient re-executes
// it (live against the universe, like Wepawet re-requesting the ad), every
// observed domain is checked against the blacklists, and every downloaded
// file is scanned.
func (o *Oracle) Classify(ad *corpus.Ad) Incident {
	return o.ClassifyContext(context.Background(), ad)
}

// ClassifyContext is Classify under a caller-supplied context: the
// honeyclient's instrumented execution is bounded by it, and a partial
// execution still classifies on the surviving evidence (Report.Degraded
// records that the verdict is partial).
func (o *Oracle) ClassifyContext(ctx context.Context, ad *corpus.Ad) Incident {
	var sp *telemetry.Span
	ctx, sp = o.Tel.StartSpan(ctx, telemetry.StageOracle, ad.Hash)
	defer sp.End()
	rep := o.Honey.AnalyzeAdContext(ctx, ad.FrameURL, ad.Day)
	return o.classifyReport(ad, rep)
}

// ClassifySnapshot classifies from the corpus's stored HTML snapshot
// instead of re-requesting the ad — the paper's fallback when an ad chain
// had already rotated or died by analysis time. Subresources the snapshot
// references are still fetched live where possible.
func (o *Oracle) ClassifySnapshot(ad *corpus.Ad) Incident {
	ctx, sp := o.Tel.StartSpan(context.Background(), telemetry.StageOracle, ad.Hash)
	defer sp.End()
	rep := o.Honey.AnalyzeHTMLAdContext(ctx, ad.HTML, ad.FinalURL, ad.Day)
	return o.classifyReport(ad, rep)
}

// classifyReport applies the Table-1 precedence over the gathered evidence.
func (o *Oracle) classifyReport(ad *corpus.Ad, rep *honeyclient.Report) Incident {
	inc := Incident{AdHash: ad.Hash, Category: CatClean, Report: rep}

	// 1. Blacklists: any domain that served (part of) the advertisement on
	// more than five lists. Both the crawl-time hosts and the
	// honeyclient-time hosts count — cloaking can hide hosts from one view.
	hosts := make([]string, 0, len(ad.Hosts)+len(rep.Hosts))
	hosts = append(hosts, ad.Hosts...)
	hosts = append(hosts, rep.Hosts...)
	var offender string
	var listed bool
	if o.TemporalBlacklists {
		offender, listed = o.Lists.AnyMaliciousAsOf(hosts, ad.Day)
	} else {
		offender, listed = o.Lists.AnyMalicious(hosts)
	}
	if listed {
		inc.Category = CatBlacklists
		inc.Evidence = "domain " + offender + " on >5 blacklists"
		return inc
	}

	// 2. Suspicious redirections: the ad forced the top-level page away
	// (link hijacking, §2.3).
	if rep.Hijack {
		inc.Category = CatSuspRedirect
		inc.Evidence = "top.location rewrite observed"
		return inc
	}

	// 3. Heuristics: cloaking indicators — redirects to NX domains or to
	// benign search engines.
	if rep.NXRedirect || rep.BenignRedirect {
		inc.Category = CatHeuristics
		if rep.NXRedirect {
			inc.Evidence = "redirect to nonexistent domain"
		} else {
			inc.Evidence = "redirect to benign search engine"
		}
		return inc
	}

	// 4 & 5. Payloads: scan every download; executables before Flash.
	var exeHit, swfHit bool
	var exeSig, swfSig string
	for _, d := range rep.Downloads {
		r := o.Scanner.Scan(d.Body)
		if !r.Malicious(o.Scanner.Threshold) {
			continue
		}
		switch r.Kind {
		case avscan.KindFlash:
			if !swfHit {
				swfHit = true
				swfSig = firstSignature(r)
			}
		default:
			if !exeHit {
				exeHit = true
				exeSig = firstSignature(r)
			}
		}
	}
	if exeHit {
		inc.Category = CatMaliciousExe
		inc.Evidence = "download flagged: " + exeSig
		return inc
	}
	if swfHit {
		inc.Category = CatMaliciousSWF
		inc.Evidence = "flash flagged: " + swfSig
		return inc
	}

	// 6. Behavioural model.
	if rep.ModelHit {
		inc.Category = CatModel
		inc.Evidence = "behavioural model score over threshold"
		return inc
	}
	return inc
}

func firstSignature(r *avscan.Report) string {
	for _, v := range r.Verdicts {
		if v.Malicious && v.Signature != "" {
			return v.Signature
		}
	}
	return "unknown"
}

// GraphFinding is one flow-graph verdict — the fourth oracle component's
// per-ad output, kept beside (never inside) the Table-1 incident.
type GraphFinding struct {
	AdHash string
	// Signals are the structural signals that fired (flowgraph.Verdict).
	Signals []string
	// Features is the ad's structural feature vector.
	Features flowgraph.Features
}

// Result aggregates a corpus classification.
type Result struct {
	Incidents []Incident
	// ByCategory counts incidents per category.
	ByCategory map[Category]int
	// Scanned is the number of advertisements classified.
	Scanned int
	// Degraded counts classifications that ran on partial evidence (the
	// honeyclient's execution hit faults or deadlines but still reported).
	Degraded int

	// GraphScanned counts ads that carried a flow-graph summary (0 when the
	// graph oracle is off). GraphFindings lists the ads the graph classifier
	// flagged, in corpus order. Both are additive: base fields above are
	// byte-identical with the graph oracle on or off.
	GraphScanned  int
	GraphFindings []GraphFinding
}

// MaliciousCount returns the total number of incidents.
func (r *Result) MaliciousCount() int {
	n := 0
	for _, c := range r.ByCategory {
		n += c
	}
	return n
}

// MaliciousRate returns incidents / scanned.
func (r *Result) MaliciousRate() float64 {
	if r.Scanned == 0 {
		return 0
	}
	return float64(r.MaliciousCount()) / float64(r.Scanned)
}

// ClassifyCorpus classifies every ad in the corpus with a worker pool and
// returns the aggregate. Incident order follows corpus order.
func (o *Oracle) ClassifyCorpus(c *corpus.Corpus) *Result {
	return o.ClassifyCorpusContext(context.Background(), c)
}

// ClassifyCorpusContext is ClassifyCorpus under a caller-supplied context:
// cancelling it stops the pool after in-flight classifications finish, and
// the partial aggregate covers only the ads actually scanned.
func (o *Oracle) ClassifyCorpusContext(ctx context.Context, c *corpus.Corpus) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	ads := c.All()
	incidents := make([]Incident, len(ads))
	scanned := make([]bool, len(ads))

	par := o.Parallelism
	if par <= 0 {
		par = 4
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Check cancellation both before and after claiming an
				// index: a worker that loses the race (ctx cancelled
				// between check and claim) abandons its slot instead of
				// burning an Incident and a scanned entry on a verdict
				// nobody will trust.
				if ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(ads) || ctx.Err() != nil {
					return
				}
				incidents[i] = o.ClassifyContext(ctx, ads[i])
				scanned[i] = true
			}
		}()
	}
	wg.Wait()

	res := &Result{ByCategory: map[Category]int{}}
	for i, inc := range incidents {
		if !scanned[i] {
			continue
		}
		res.Scanned++
		if inc.Report != nil && inc.Report.Degraded {
			res.Degraded++
		}
		if inc.Malicious() {
			res.Incidents = append(res.Incidents, inc)
			res.ByCategory[inc.Category]++
		}
		if inc.Report != nil && inc.Report.Graph != nil {
			res.GraphScanned++
			if inc.Report.Graph.Verdict.Malicious {
				res.GraphFindings = append(res.GraphFindings, GraphFinding{
					AdHash:   inc.AdHash,
					Signals:  inc.Report.Graph.Verdict.Signals,
					Features: inc.Report.Graph.Features,
				})
			}
		}
	}
	return res
}
