// Package netcap captures HTTP traffic. The paper's methodology "captured
// all the HTTP traffic during crawling for further investigation"; this
// package is that capture layer: an http.RoundTripper middleware that logs
// every transaction (request URL, status, content type, redirect target,
// referer) into an ordered, queryable trace.
//
// Both the crawler and the honeyclient wrap their clients with a Capture;
// the analysis stage later mines the traces for redirect chains and
// arbitration hops.
package netcap

import (
	"net/http"
	"sync"
	"time"

	"madave/internal/urlx"
)

// Transaction is one captured HTTP request/response pair.
type Transaction struct {
	// Seq is the 0-based capture order within the Capture.
	Seq int
	// Time is the wall-clock capture time (informational only; the
	// simulation's logic never branches on it).
	Time   time.Time
	Method string
	URL    string
	Host   string
	// Referer is the request's Referer header, which encodes the redirect/
	// inclusion chain the analysis reconstructs.
	Referer string
	Status  int
	// ContentType is the response Content-Type without parameters.
	ContentType string
	// Location is the response Location header for redirects.
	Location string
	// BodySize is the response body length as reported by the transport.
	BodySize int64
	// Err is the transport error string when the request failed (e.g. an
	// NXDOMAIN from memnet); empty on success.
	Err string
	// Tag is a free-form label the initiator attaches (e.g. "iframe",
	// "script", "adchain") so analyses can filter by cause.
	Tag string
	// FrameID identifies the browser frame whose load issued the request,
	// as a frame-tree path ("0" for the root document, "0.1" for its second
	// subframe, ...). Empty when the issuer did not stamp provenance.
	FrameID string `json:",omitempty"`
	// Initiator is the URL of the document or script that caused the
	// request (the redirecting URL for chain hops, the script src for
	// script-driven fetches). Empty when unknown.
	Initiator string `json:",omitempty"`
	// Via records how the request came to be: "document", "redirect",
	// "script", "iframe", "img", "embed", "object", "nav", ... Empty when
	// the issuer did not stamp provenance.
	Via string `json:",omitempty"`
}

// IsRedirect reports whether the transaction is an HTTP redirect that
// actually moves a browser to a new URL. 301/302/303 and the
// method-preserving 307/308 count; 304 Not Modified is a cache
// revalidation, and the deprecated 305 Use Proxy / reserved 306 never
// navigate, so none of those are chain hops even with a Location header.
func (t *Transaction) IsRedirect() bool {
	switch t.Status {
	case 301, 302, 303, 307, 308:
		return t.Location != ""
	}
	return false
}

// Capture is a thread-safe HTTP transaction log that wraps a RoundTripper.
type Capture struct {
	mu   sync.Mutex
	log  []Transaction
	next http.RoundTripper
	// tag applied to transactions issued through this capture's transport.
	tag string
	// origin is the provenance stamp applied to subsequently captured
	// transactions; see SetOrigin.
	origin struct {
		frameID   string
		initiator string
		via       string
	}
}

// New wraps next with a fresh capture. A nil next uses
// http.DefaultTransport.
func New(next http.RoundTripper) *Capture {
	if next == nil {
		next = http.DefaultTransport
	}
	// Transaction is a large value; a small presize skips the first append
	// regrowth copies without stranding memory on short captures.
	return &Capture{next: next, log: make([]Transaction, 0, 4)}
}

// WithTag returns a RoundTripper view of c that tags every transaction it
// captures. Multiple tagged views share one log.
func (c *Capture) WithTag(tag string) http.RoundTripper {
	return &taggedTripper{c: c, tag: tag}
}

type taggedTripper struct {
	c   *Capture
	tag string
}

func (t *taggedTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	return t.c.roundTrip(req, t.tag)
}

// RoundTrip implements http.RoundTripper with the capture's default tag.
func (c *Capture) RoundTrip(req *http.Request) (*http.Response, error) {
	return c.roundTrip(req, c.tag)
}

// SetOrigin sets the provenance stamped onto transactions captured from
// now on: the issuing frame's tree path, the initiator URL (document or
// script), and a via label naming the cause. The browser drives one capture
// from a single goroutine and restamps before every fetch; concurrent users
// of a shared capture should leave the origin unset.
func (c *Capture) SetOrigin(frameID, initiator, via string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.origin.frameID, c.origin.initiator, c.origin.via = frameID, initiator, via
}

// ClearOrigin removes the provenance stamp.
func (c *Capture) ClearOrigin() { c.SetOrigin("", "", "") }

func (c *Capture) stampOrigin(tx *Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tx.FrameID = c.origin.frameID
	tx.Initiator = c.origin.initiator
	tx.Via = c.origin.via
}

func (c *Capture) roundTrip(req *http.Request, tag string) (*http.Response, error) {
	tx := Transaction{
		Time:    time.Now(),
		Method:  req.Method,
		URL:     req.URL.String(),
		Host:    urlx.Host(req.URL.String()),
		Referer: req.Header.Get("Referer"),
		Tag:     tag,
	}
	c.stampOrigin(&tx)
	resp, err := c.next.RoundTrip(req)
	if err != nil {
		tx.Err = err.Error()
		c.append(tx)
		return nil, err
	}
	tx.Status = resp.StatusCode
	tx.ContentType = mediaType(resp.Header.Get("Content-Type"))
	tx.Location = resp.Header.Get("Location")
	tx.BodySize = resp.ContentLength
	c.append(tx)
	return resp, nil
}

func (c *Capture) append(tx Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tx.Seq = len(c.log)
	c.log = append(c.log, tx)
}

// Record appends a synthetic transaction that did not pass through the
// RoundTripper (e.g. a navigation the browser suppressed). Seq is assigned
// by the capture.
func (c *Capture) Record(tx Transaction) {
	if tx.Host == "" {
		tx.Host = urlx.Host(tx.URL)
	}
	c.append(tx)
}

// Len returns the number of captured transactions.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.log)
}

// All returns a copy of the capture log in order.
func (c *Capture) All() []Transaction {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Transaction, len(c.log))
	copy(out, c.log)
	return out
}

// Reset clears the log.
func (c *Capture) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log = c.log[:0]
}

// Filter returns transactions for which keep returns true, in order.
func (c *Capture) Filter(keep func(*Transaction) bool) []Transaction {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Transaction
	for i := range c.log {
		if keep(&c.log[i]) {
			out = append(out, c.log[i])
		}
	}
	return out
}

// Hosts returns the distinct hosts contacted, in first-seen order.
func (c *Capture) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for i := range c.log {
		h := c.log[i].Host
		if h != "" && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// RedirectChainFrom reconstructs the redirect chain starting at the first
// transaction whose URL matches start and returns the URLs visited,
// starting with start. It is a compatibility wrapper over ChainFrom; use
// ChainFrom/ChainAt when the cycle shape or a specific visit matters.
func (c *Capture) RedirectChainFrom(start string) []string {
	ch := c.ChainFrom(start)
	if len(ch.Hops) == 0 {
		return []string{stripFragment(start)}
	}
	return ch.Hops
}

// mediaType strips parameters from a Content-Type value.
func mediaType(ct string) string {
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			return trimSpace(ct[:i])
		}
	}
	return trimSpace(ct)
}

// trimSpace strips the optional whitespace RFC 7230 allows around header
// values: spaces and horizontal tabs.
func trimSpace(s string) string {
	start := 0
	for start < len(s) && (s[start] == ' ' || s[start] == '\t') {
		start++
	}
	end := len(s)
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t') {
		end--
	}
	return s[start:end]
}
