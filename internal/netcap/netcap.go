// Package netcap captures HTTP traffic. The paper's methodology "captured
// all the HTTP traffic during crawling for further investigation"; this
// package is that capture layer: an http.RoundTripper middleware that logs
// every transaction (request URL, status, content type, redirect target,
// referer) into an ordered, queryable trace.
//
// Both the crawler and the honeyclient wrap their clients with a Capture;
// the analysis stage later mines the traces for redirect chains and
// arbitration hops.
package netcap

import (
	"net/http"
	"sync"
	"time"

	"madave/internal/urlx"
)

// Transaction is one captured HTTP request/response pair.
type Transaction struct {
	// Seq is the 0-based capture order within the Capture.
	Seq int
	// Time is the wall-clock capture time (informational only; the
	// simulation's logic never branches on it).
	Time   time.Time
	Method string
	URL    string
	Host   string
	// Referer is the request's Referer header, which encodes the redirect/
	// inclusion chain the analysis reconstructs.
	Referer string
	Status  int
	// ContentType is the response Content-Type without parameters.
	ContentType string
	// Location is the response Location header for redirects.
	Location string
	// BodySize is the response body length as reported by the transport.
	BodySize int64
	// Err is the transport error string when the request failed (e.g. an
	// NXDOMAIN from memnet); empty on success.
	Err string
	// Tag is a free-form label the initiator attaches (e.g. "iframe",
	// "script", "adchain") so analyses can filter by cause.
	Tag string
}

// IsRedirect reports whether the transaction is an HTTP redirect.
func (t *Transaction) IsRedirect() bool {
	return t.Status >= 300 && t.Status < 400 && t.Location != ""
}

// Capture is a thread-safe HTTP transaction log that wraps a RoundTripper.
type Capture struct {
	mu   sync.Mutex
	log  []Transaction
	next http.RoundTripper
	// tag applied to transactions issued through this capture's transport.
	tag string
}

// New wraps next with a fresh capture. A nil next uses
// http.DefaultTransport.
func New(next http.RoundTripper) *Capture {
	if next == nil {
		next = http.DefaultTransport
	}
	// Transaction is a large value; a small presize skips the first append
	// regrowth copies without stranding memory on short captures.
	return &Capture{next: next, log: make([]Transaction, 0, 4)}
}

// WithTag returns a RoundTripper view of c that tags every transaction it
// captures. Multiple tagged views share one log.
func (c *Capture) WithTag(tag string) http.RoundTripper {
	return &taggedTripper{c: c, tag: tag}
}

type taggedTripper struct {
	c   *Capture
	tag string
}

func (t *taggedTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	return t.c.roundTrip(req, t.tag)
}

// RoundTrip implements http.RoundTripper with the capture's default tag.
func (c *Capture) RoundTrip(req *http.Request) (*http.Response, error) {
	return c.roundTrip(req, c.tag)
}

func (c *Capture) roundTrip(req *http.Request, tag string) (*http.Response, error) {
	tx := Transaction{
		Time:    time.Now(),
		Method:  req.Method,
		URL:     req.URL.String(),
		Host:    urlx.Host(req.URL.String()),
		Referer: req.Header.Get("Referer"),
		Tag:     tag,
	}
	resp, err := c.next.RoundTrip(req)
	if err != nil {
		tx.Err = err.Error()
		c.append(tx)
		return nil, err
	}
	tx.Status = resp.StatusCode
	tx.ContentType = mediaType(resp.Header.Get("Content-Type"))
	tx.Location = resp.Header.Get("Location")
	tx.BodySize = resp.ContentLength
	c.append(tx)
	return resp, nil
}

func (c *Capture) append(tx Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tx.Seq = len(c.log)
	c.log = append(c.log, tx)
}

// Record appends a synthetic transaction that did not pass through the
// RoundTripper (e.g. a navigation the browser suppressed). Seq is assigned
// by the capture.
func (c *Capture) Record(tx Transaction) {
	if tx.Host == "" {
		tx.Host = urlx.Host(tx.URL)
	}
	c.append(tx)
}

// Len returns the number of captured transactions.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.log)
}

// All returns a copy of the capture log in order.
func (c *Capture) All() []Transaction {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Transaction, len(c.log))
	copy(out, c.log)
	return out
}

// Reset clears the log.
func (c *Capture) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log = c.log[:0]
}

// Filter returns transactions for which keep returns true, in order.
func (c *Capture) Filter(keep func(*Transaction) bool) []Transaction {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Transaction
	for i := range c.log {
		if keep(&c.log[i]) {
			out = append(out, c.log[i])
		}
	}
	return out
}

// Hosts returns the distinct hosts contacted, in first-seen order.
func (c *Capture) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for i := range c.log {
		h := c.log[i].Host
		if h != "" && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// RedirectChainFrom reconstructs the redirect chain starting at the
// transaction with the given URL: it follows Location targets through the
// log in sequence order. It returns the URLs visited, starting with start.
func (c *Capture) RedirectChainFrom(start string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	chain := []string{start}
	cur := start
	for i := 0; i < len(c.log); i++ {
		tx := &c.log[i]
		if tx.URL != cur {
			continue
		}
		if !tx.IsRedirect() {
			break
		}
		next := urlx.Resolve(tx.URL, tx.Location)
		if next == "" || next == cur {
			break
		}
		chain = append(chain, next)
		cur = next
		if len(chain) > 128 {
			break // defensive bound against pathological logs
		}
	}
	return chain
}

// mediaType strips parameters from a Content-Type value.
func mediaType(ct string) string {
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			return trimSpace(ct[:i])
		}
	}
	return trimSpace(ct)
}

func trimSpace(s string) string {
	start := 0
	for start < len(s) && s[start] == ' ' {
		start++
	}
	end := len(s)
	for end > start && s[end-1] == ' ' {
		end--
	}
	return s[start:end]
}
