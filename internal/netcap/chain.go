package netcap

import "madave/internal/urlx"

// chainMaxHops bounds reconstruction against pathological logs. Real
// arbitration chains in the paper top out around a dozen hops; anything
// near the bound is reported as Truncated rather than silently cut.
const chainMaxHops = 128

// RedirectChain is a reconstructed redirect chain. Hops are the URLs
// visited in order (fragment-stripped, since browsers drop fragments before
// requesting the next hop). When the chain re-enters an earlier hop,
// reconstruction stops at the first re-entry and reports the cycle shape
// instead of walking the loop until the log runs out.
type RedirectChain struct {
	Hops []string
	// CycleStart is the index in Hops of the hop the chain re-entered, or
	// -1 when the chain is acyclic. The re-entered URL appears twice: at
	// CycleStart and again as the final hop.
	CycleStart int
	// Truncated reports that reconstruction hit the defensive hop bound.
	Truncated bool
}

// HasCycle reports whether the chain re-entered an earlier hop.
func (ch *RedirectChain) HasCycle() bool { return ch.CycleStart >= 0 }

// Cycle returns the repeating shape of a cyclic chain (the hops from the
// re-entered URL up to, but not including, its repeat): A→B→A yields
// [A, B]. Nil for acyclic chains.
func (ch *RedirectChain) Cycle() []string {
	if !ch.HasCycle() {
		return nil
	}
	return ch.Hops[ch.CycleStart : len(ch.Hops)-1]
}

// Len returns the hop count.
func (ch *RedirectChain) Len() int { return len(ch.Hops) }

// ChainFrom reconstructs the redirect chain that starts at the first
// transaction whose URL matches start (fragment-stripped). Hops is empty
// when no transaction matches. Use ChainAt to reconstruct a specific visit
// when the same URL was crawled more than once.
func (c *Capture) ChainFrom(start string) RedirectChain {
	c.mu.Lock()
	defer c.mu.Unlock()
	want := stripFragment(start)
	for i := range c.log {
		if stripFragment(c.log[i].URL) == want {
			return c.chainLocked(i)
		}
	}
	return RedirectChain{CycleStart: -1}
}

// ChainAt reconstructs the redirect chain that starts at the transaction
// with the given sequence number. Two visits through the same URL leave two
// start transactions in the log; ChainAt keeps their chains separate where
// ChainFrom can only see the first.
func (c *Capture) ChainAt(seq int) RedirectChain {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.log {
		if c.log[i].Seq == seq {
			return c.chainLocked(i)
		}
	}
	return RedirectChain{CycleStart: -1}
}

// chainLocked walks the chain beginning at log index idx. Unlike the old
// first-match-from-the-top scan, every hop advances strictly forward in
// sequence order from the previous hop's transaction, and when both sides
// carry frame provenance a hop only matches transactions from the same
// frame — so two interleaved visits through a shared URL reconstruct as two
// distinct chains instead of splicing into each other.
func (c *Capture) chainLocked(idx int) RedirectChain {
	ch := RedirectChain{CycleStart: -1}
	if idx < 0 || idx >= len(c.log) {
		return ch
	}
	tx := &c.log[idx]
	frame := tx.FrameID
	cur := stripFragment(tx.URL)
	ch.Hops = append(ch.Hops, cur)
	seen := map[string]int{cur: 0}
	for {
		if !tx.IsRedirect() {
			return ch
		}
		next := stripFragment(urlx.Resolve(tx.URL, tx.Location))
		if next == "" {
			return ch
		}
		if at, ok := seen[next]; ok {
			// The chain re-entered an earlier hop: record the repeat so the
			// cycle is visible, report its shape, and stop.
			ch.Hops = append(ch.Hops, next)
			ch.CycleStart = at
			return ch
		}
		ch.Hops = append(ch.Hops, next)
		seen[next] = len(ch.Hops) - 1
		if len(ch.Hops) >= chainMaxHops {
			ch.Truncated = true
			return ch
		}
		// Advance to the earliest later transaction for the next hop.
		found := -1
		for i := idx + 1; i < len(c.log); i++ {
			cand := &c.log[i]
			if stripFragment(cand.URL) != next {
				continue
			}
			if frame != "" && cand.FrameID != "" && cand.FrameID != frame {
				continue
			}
			found = i
			break
		}
		if found < 0 {
			// The Location target was never fetched (browser stopped, or
			// the hop errored before capture); the resolved hop still
			// belongs to the chain.
			return ch
		}
		idx = found
		tx = &c.log[idx]
	}
}

// stripFragment removes a URL's fragment, matching what a browser actually
// requests when it follows a Location header.
func stripFragment(u string) string {
	for i := 0; i < len(u); i++ {
		if u[i] == '#' {
			return u[:i]
		}
	}
	return u
}
