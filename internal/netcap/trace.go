package netcap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Save writes the capture as JSON lines (one transaction per line) — the
// repository's lightweight analogue of the paper's "captured all the HTTP
// traffic during crawling for further investigation".
func (c *Capture) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tx := range c.All() {
		if err := enc.Encode(tx); err != nil {
			return fmt.Errorf("netcap: encode seq %d: %w", tx.Seq, err)
		}
	}
	return bw.Flush()
}

// LoadTrace reads a JSON-lines trace written by Save. Sequence numbers are
// reassigned in file order.
func LoadTrace(r io.Reader) (*Capture, error) {
	c := New(nil)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 256*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var tx Transaction
		if err := json.Unmarshal(sc.Bytes(), &tx); err != nil {
			return nil, fmt.Errorf("netcap: line %d: %w", line, err)
		}
		c.append(tx)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Summary aggregates a capture for quick inspection.
type TraceSummary struct {
	Transactions int
	Hosts        int
	Redirects    int
	Errors       int
	BytesTotal   int64
}

// Summarize computes a TraceSummary.
func (c *Capture) Summarize() TraceSummary {
	s := TraceSummary{}
	hosts := map[string]bool{}
	for _, tx := range c.All() {
		s.Transactions++
		hosts[tx.Host] = true
		if tx.IsRedirect() {
			s.Redirects++
		}
		if tx.Err != "" {
			s.Errors++
		}
		if tx.BodySize > 0 {
			s.BytesTotal += tx.BodySize
		}
	}
	s.Hosts = len(hosts)
	return s
}
