package netcap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Save writes the capture as JSON lines (one transaction per line) — the
// repository's lightweight analogue of the paper's "captured all the HTTP
// traffic during crawling for further investigation".
func (c *Capture) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tx := range c.All() {
		if err := enc.Encode(tx); err != nil {
			return fmt.Errorf("netcap: encode seq %d: %w", tx.Seq, err)
		}
	}
	return bw.Flush()
}

// LoadTrace reads a JSON-lines trace written by Save. Sequence numbers are
// reassigned in file order.
func LoadTrace(r io.Reader) (*Capture, error) {
	c := New(nil)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 256*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var tx Transaction
		if err := json.Unmarshal(sc.Bytes(), &tx); err != nil {
			return nil, fmt.Errorf("netcap: line %d: %w", line, err)
		}
		c.append(tx)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// HostStat aggregates one host's share of a trace.
type HostStat struct {
	Host         string
	Transactions int
	Bytes        int64
}

// Summary aggregates a capture for quick inspection.
type TraceSummary struct {
	Transactions int
	Hosts        int
	Redirects    int
	Errors       int
	BytesTotal   int64
	// PerHost holds every host's transaction count and byte total, sorted
	// busiest first (ties by host name, so the order is deterministic).
	PerHost []HostStat
}

// TopHosts returns the n busiest hosts (all of them when n exceeds the
// host count).
func (s TraceSummary) TopHosts(n int) []HostStat {
	if n > len(s.PerHost) {
		n = len(s.PerHost)
	}
	if n < 0 {
		n = 0
	}
	return s.PerHost[:n]
}

// Summarize computes a TraceSummary.
func (c *Capture) Summarize() TraceSummary {
	s := TraceSummary{}
	hosts := map[string]*HostStat{}
	for _, tx := range c.All() {
		s.Transactions++
		hs := hosts[tx.Host]
		if hs == nil {
			hs = &HostStat{Host: tx.Host}
			hosts[tx.Host] = hs
		}
		hs.Transactions++
		if tx.IsRedirect() {
			s.Redirects++
		}
		if tx.Err != "" {
			s.Errors++
		}
		if tx.BodySize > 0 {
			s.BytesTotal += tx.BodySize
			hs.Bytes += tx.BodySize
		}
	}
	s.Hosts = len(hosts)
	s.PerHost = make([]HostStat, 0, len(hosts))
	for _, hs := range hosts {
		s.PerHost = append(s.PerHost, *hs)
	}
	sort.Slice(s.PerHost, func(i, j int) bool {
		a, b := s.PerHost[i], s.PerHost[j]
		if a.Transactions != b.Transactions {
			return a.Transactions > b.Transactions
		}
		return a.Host < b.Host
	})
	return s
}
