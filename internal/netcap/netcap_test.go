package netcap

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"madave/internal/memnet"
)

func newCapturedClient() (*Capture, *http.Client) {
	u := memnet.NewUniverse()
	u.HandleFunc("a.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, "<html>A</html>")
	})
	u.HandleFunc("hop1.example.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://hop2.example.com/", http.StatusFound)
	})
	u.HandleFunc("hop2.example.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://final.example.com/land", http.StatusMovedPermanently)
	})
	u.HandleFunc("final.example.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "landed")
	})
	cap := New(&memnet.Transport{U: u})
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	return cap, client
}

func get(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func TestCaptureBasics(t *testing.T) {
	cap, client := newCapturedClient()
	get(t, client, "http://a.example.com/page")

	txs := cap.All()
	if len(txs) != 1 {
		t.Fatalf("captured %d transactions", len(txs))
	}
	tx := txs[0]
	if tx.URL != "http://a.example.com/page" || tx.Host != "a.example.com" {
		t.Fatalf("tx = %+v", tx)
	}
	if tx.Status != 200 || tx.ContentType != "text/html" {
		t.Fatalf("tx = %+v", tx)
	}
	if tx.Seq != 0 {
		t.Fatalf("seq = %d", tx.Seq)
	}
}

func TestCaptureRedirectFields(t *testing.T) {
	cap, client := newCapturedClient()
	get(t, client, "http://hop1.example.com/")
	tx := cap.All()[0]
	if !tx.IsRedirect() {
		t.Fatalf("tx should be redirect: %+v", tx)
	}
	if tx.Location != "http://hop2.example.com/" {
		t.Fatalf("location = %q", tx.Location)
	}
}

func TestCaptureError(t *testing.T) {
	cap, client := newCapturedClient()
	_, err := client.Get("http://missing.example.org/")
	if err == nil {
		t.Fatal("expected NXDOMAIN")
	}
	txs := cap.All()
	if len(txs) != 1 || txs[0].Err == "" {
		t.Fatalf("error transaction not captured: %+v", txs)
	}
}

func TestRedirectChainReconstruction(t *testing.T) {
	cap, client := newCapturedClient()
	// Manually walk the chain like the browser does.
	url := "http://hop1.example.com/"
	for i := 0; i < 5; i++ {
		resp := get(t, client, url)
		loc := resp.Header.Get("Location")
		if loc == "" {
			break
		}
		url = loc
	}
	chain := cap.RedirectChainFrom("http://hop1.example.com/")
	want := []string{
		"http://hop1.example.com/",
		"http://hop2.example.com/",
		"http://final.example.com/land",
	}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %q, want %q", i, chain[i], want[i])
		}
	}
}

func TestTaggedViews(t *testing.T) {
	cap, _ := newCapturedClient()
	u := memnet.NewUniverse()
	u.HandleFunc("x.example.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	base := &memnet.Transport{U: u}
	cap2 := New(base)
	frameClient := &http.Client{Transport: cap2.WithTag("iframe")}
	scriptClient := &http.Client{Transport: cap2.WithTag("script")}

	get(t, frameClient, "http://x.example.com/f")
	get(t, scriptClient, "http://x.example.com/s")

	iframe := cap2.Filter(func(tx *Transaction) bool { return tx.Tag == "iframe" })
	script := cap2.Filter(func(tx *Transaction) bool { return tx.Tag == "script" })
	if len(iframe) != 1 || len(script) != 1 {
		t.Fatalf("iframe=%d script=%d", len(iframe), len(script))
	}
	_ = cap
}

func TestHostsFirstSeenOrder(t *testing.T) {
	cap, client := newCapturedClient()
	get(t, client, "http://a.example.com/1")
	get(t, client, "http://final.example.com/")
	get(t, client, "http://a.example.com/2")
	hosts := cap.Hosts()
	if len(hosts) != 2 || hosts[0] != "a.example.com" || hosts[1] != "final.example.com" {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestRecordSynthetic(t *testing.T) {
	cap := New(nil)
	cap.Record(Transaction{URL: "http://blocked.example.com/x", Tag: "nav-suppressed"})
	txs := cap.All()
	if len(txs) != 1 || txs[0].Host != "blocked.example.com" || txs[0].Seq != 0 {
		t.Fatalf("txs = %+v", txs)
	}
}

func TestResetAndLen(t *testing.T) {
	cap, client := newCapturedClient()
	get(t, client, "http://a.example.com/")
	if cap.Len() != 1 {
		t.Fatalf("len = %d", cap.Len())
	}
	cap.Reset()
	if cap.Len() != 0 {
		t.Fatalf("len after reset = %d", cap.Len())
	}
}

func TestConcurrentCapture(t *testing.T) {
	cap, client := newCapturedClient()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, err := client.Get(fmt.Sprintf("http://a.example.com/p%d", n))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	if cap.Len() != 16 {
		t.Fatalf("captured %d, want 16", cap.Len())
	}
	// Seq numbers must be unique and dense.
	seen := map[int]bool{}
	for _, tx := range cap.All() {
		if seen[tx.Seq] {
			t.Fatalf("duplicate seq %d", tx.Seq)
		}
		seen[tx.Seq] = true
	}
}

func TestMediaType(t *testing.T) {
	for in, want := range map[string]string{
		"text/html; charset=utf-8": "text/html",
		"application/json":         "application/json",
		"  text/plain  ":           "text/plain",
		"":                         "",
	} {
		if got := mediaType(in); got != want {
			t.Errorf("mediaType(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMediaTypeWhitespaceAndParams audits mediaType/trimSpace against
// parameterized and whitespace-padded Content-Type values: RFC 7230 allows
// optional whitespace (space OR horizontal tab) around the media type and
// before parameters, and real servers emit both.
func TestMediaTypeWhitespaceAndParams(t *testing.T) {
	for in, want := range map[string]string{
		"\ttext/html\t":                          "text/html",
		"\t application/json ; charset=utf-8":    "application/json",
		"text/html\t;\tcharset=utf-8":            "text/html",
		"application/x-shockwave-flash ;q=0.9":   "application/x-shockwave-flash",
		" text/plain;charset=us-ascii;format=x ": "text/plain",
		";charset=utf-8":                         "",
		"\t \t":                                  "",
	} {
		if got := mediaType(in); got != want {
			t.Errorf("mediaType(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestIsRedirectStatusTable cross-checks IsRedirect against the status
// codes that actually move a browser: 301/302/303 and the method-preserving
// 307/308 are chain hops; 304 Not Modified is a cache revalidation and
// 305/306 are deprecated/reserved — none of those three navigate, even when
// a Location header is present.
func TestIsRedirectStatusTable(t *testing.T) {
	for _, tc := range []struct {
		status   int
		location string
		want     bool
	}{
		{301, "http://x.example.com/", true},
		{302, "http://x.example.com/", true},
		{303, "http://x.example.com/", true},
		{304, "http://x.example.com/", false},
		{305, "http://proxy.example.com/", false},
		{306, "http://proxy.example.com/", false},
		{307, "http://x.example.com/", true},
		{308, "http://x.example.com/", true},
		{302, "", false},
		{200, "http://x.example.com/", false},
		{404, "", false},
	} {
		tx := Transaction{Status: tc.status, Location: tc.location}
		if got := tx.IsRedirect(); got != tc.want {
			t.Errorf("IsRedirect(status=%d, location=%q) = %v, want %v",
				tc.status, tc.location, got, tc.want)
		}
	}
}

func TestTraceSaveLoad(t *testing.T) {
	cap, client := newCapturedClient()
	get(t, client, "http://a.example.com/1")
	get(t, client, "http://hop1.example.com/")
	client.Get("http://missing.example.org/") //nolint:errcheck // error expected

	var buf bytes.Buffer
	if err := cap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != cap.Len() {
		t.Fatalf("loaded %d != %d", loaded.Len(), cap.Len())
	}
	a, b := cap.All(), loaded.All()
	for i := range a {
		if a[i].URL != b[i].URL || a[i].Status != b[i].Status || a[i].Err != b[i].Err {
			t.Fatalf("tx %d mismatch: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestTraceSummary(t *testing.T) {
	cap, client := newCapturedClient()
	get(t, client, "http://a.example.com/x")
	get(t, client, "http://hop1.example.com/")
	client.Get("http://missing.example.org/") //nolint:errcheck // error expected

	s := cap.Summarize()
	if s.Transactions != 3 || s.Redirects != 1 || s.Errors != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Hosts != 3 {
		t.Fatalf("hosts = %d", s.Hosts)
	}
	if s.BytesTotal <= 0 {
		t.Fatalf("bytes = %d", s.BytesTotal)
	}
}
