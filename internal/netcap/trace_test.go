package netcap

import (
	"strings"
	"testing"
)

// synth loads a capture with synthetic transactions for summary tests.
func synth(txs ...Transaction) *Capture {
	c := New(nil)
	for _, tx := range txs {
		c.append(tx)
	}
	return c
}

func TestSummarizePerHost(t *testing.T) {
	c := synth(
		Transaction{Host: "ads.example.com", URL: "http://ads.example.com/1", BodySize: 100},
		Transaction{Host: "ads.example.com", URL: "http://ads.example.com/2", BodySize: 50},
		Transaction{Host: "pub.example.com", URL: "http://pub.example.com/", BodySize: 400},
		Transaction{Host: "cdn.example.com", URL: "http://cdn.example.com/", BodySize: 10},
		Transaction{Host: "cdn.example.com", URL: "http://cdn.example.com/2", BodySize: 10},
	)
	s := c.Summarize()
	if len(s.PerHost) != 3 {
		t.Fatalf("per-host entries = %d, want 3", len(s.PerHost))
	}
	// Busiest first; the two-transaction hosts tie and sort by name.
	want := []HostStat{
		{Host: "ads.example.com", Transactions: 2, Bytes: 150},
		{Host: "cdn.example.com", Transactions: 2, Bytes: 20},
		{Host: "pub.example.com", Transactions: 1, Bytes: 400},
	}
	for i, w := range want {
		if s.PerHost[i] != w {
			t.Fatalf("PerHost[%d] = %+v, want %+v", i, s.PerHost[i], w)
		}
	}
	if s.BytesTotal != 570 {
		t.Fatalf("BytesTotal = %d, want 570", s.BytesTotal)
	}
}

func TestTopHosts(t *testing.T) {
	c := synth(
		Transaction{Host: "a.example.com"},
		Transaction{Host: "a.example.com"},
		Transaction{Host: "b.example.com"},
	)
	s := c.Summarize()
	if top := s.TopHosts(1); len(top) != 1 || top[0].Host != "a.example.com" {
		t.Fatalf("TopHosts(1) = %+v", top)
	}
	if top := s.TopHosts(10); len(top) != 2 {
		t.Fatalf("TopHosts(10) returned %d hosts, want all 2", len(top))
	}
	if top := s.TopHosts(-1); len(top) != 0 {
		t.Fatalf("TopHosts(-1) = %+v, want empty", top)
	}
}

func TestLoadTraceMalformedLine(t *testing.T) {
	in := `{"Seq":0,"URL":"http://a.example.com/","Host":"a.example.com"}
{"Seq":"not a number"}
`
	_, err := LoadTrace(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed line should fail")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the offending line, got: %v", err)
	}
}

func TestLoadTraceOversizedLine(t *testing.T) {
	// One line beyond the scanner's 8MB ceiling must be a load error, not a
	// hang or a silent truncation.
	huge := `{"URL":"http://a.example.com/` + strings.Repeat("x", 9*1024*1024) + `"}`
	_, err := LoadTrace(strings.NewReader(huge))
	if err == nil {
		t.Fatal("oversized line should fail")
	}
}

func TestLoadTraceSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"Seq":5,"URL":"http://a.example.com/","Host":"a.example.com"}` + "\n\n"
	c, err := LoadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("loaded %d transactions, want 1", c.Len())
	}
}
