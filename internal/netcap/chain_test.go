package netcap

import (
	"reflect"
	"testing"
)

// record appends a synthetic transaction, the cheapest way to lay down an
// exact trace shape for chain-reconstruction tests.
func record(c *Capture, url string, status int, location string) {
	c.Record(Transaction{Method: "GET", URL: url, Status: status, Location: location})
}

// TestRedirectChainCycleShape is the A→B→A regression: a redirect loop that
// re-enters an earlier hop must be detected as a cycle, not walked again
// and again until the log (or the 128-hop defensive bound) runs out. The
// browser's own redirect limit means loops leave several A/B pairs in the
// trace; reconstruction must stop at the first re-entry.
func TestRedirectChainCycleShape(t *testing.T) {
	c := New(nil)
	for i := 0; i < 2; i++ { // the browser retried the loop twice
		record(c, "http://a.example.com/", 302, "http://b.example.com/")
		record(c, "http://b.example.com/", 302, "http://a.example.com/")
	}
	want := []string{"http://a.example.com/", "http://b.example.com/", "http://a.example.com/"}
	if got := c.RedirectChainFrom("http://a.example.com/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("chain = %v, want stop at first re-entry %v", got, want)
	}
}

// TestRedirectChainFragmentLocation: servers emit fragment-bearing Location
// values, but the browser strips the fragment before requesting the next
// hop, so the follow-up transaction's URL has no fragment. Matching the
// resolved Location verbatim against transaction URLs silently drops every
// hop past the fragment; hops must be compared fragment-stripped.
func TestRedirectChainFragmentLocation(t *testing.T) {
	c := New(nil)
	record(c, "http://a.example.com/", 302, "http://b.example.com/x#middle")
	record(c, "http://b.example.com/x", 302, "http://c.example.com/land")
	record(c, "http://c.example.com/land", 200, "")
	want := []string{"http://a.example.com/", "http://b.example.com/x", "http://c.example.com/land"}
	if got := c.RedirectChainFrom("http://a.example.com/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
}

// TestChainAtRepeatedURL is the repeated-URL regression: two visits pass
// through the same ad-serve URL whose redirect target changed between
// them. Reconstruction by first URL match splices the second visit onto the
// first's hops; ChainAt reconstructs each visit from its own transaction,
// advancing strictly forward in sequence order.
func TestChainAtRepeatedURL(t *testing.T) {
	c := New(nil)
	// Visit 1: serve → netA → land1 (seqs 0,1,2).
	record(c, "http://serve.example.com/ad", 302, "http://neta.example.com/arb")
	record(c, "http://neta.example.com/arb", 302, "http://land1.example.com/")
	record(c, "http://land1.example.com/", 200, "")
	// Visit 2: the same serve URL now arbitrates elsewhere (seqs 3,4,5).
	record(c, "http://serve.example.com/ad", 302, "http://netb.example.com/arb")
	record(c, "http://netb.example.com/arb", 302, "http://land2.example.com/")
	record(c, "http://land2.example.com/", 200, "")

	first := c.ChainAt(0)
	want1 := []string{"http://serve.example.com/ad", "http://neta.example.com/arb", "http://land1.example.com/"}
	if !reflect.DeepEqual(first.Hops, want1) || first.HasCycle() {
		t.Fatalf("visit 1 chain = %+v, want hops %v", first, want1)
	}
	second := c.ChainAt(3)
	want2 := []string{"http://serve.example.com/ad", "http://netb.example.com/arb", "http://land2.example.com/"}
	if !reflect.DeepEqual(second.Hops, want2) || second.HasCycle() {
		t.Fatalf("visit 2 chain = %+v, want hops %v", second, want2)
	}
	// The legacy entry point resolves to the first visit.
	if got := c.RedirectChainFrom("http://serve.example.com/ad"); !reflect.DeepEqual(got, want1) {
		t.Fatalf("RedirectChainFrom = %v, want %v", got, want1)
	}
}

// TestChainAtSharedHopSequence: a later chain re-uses an intermediate hop
// URL an earlier chain also passed through, but with a different onward
// target. Sequence-forward matching must bind each visit to its own
// transaction for the shared hop.
func TestChainAtSharedHopSequence(t *testing.T) {
	c := New(nil)
	record(c, "http://a.example.com/", 302, "http://hub.example.com/r") // 0
	record(c, "http://hub.example.com/r", 302, "http://x.example.com/") // 1
	record(c, "http://x.example.com/", 200, "")                         // 2
	record(c, "http://b.example.com/", 302, "http://hub.example.com/r") // 3
	record(c, "http://hub.example.com/r", 302, "http://y.example.com/") // 4
	record(c, "http://y.example.com/", 200, "")                         // 5

	got := c.ChainAt(3)
	want := []string{"http://b.example.com/", "http://hub.example.com/r", "http://y.example.com/"}
	if !reflect.DeepEqual(got.Hops, want) {
		t.Fatalf("chain = %v, want %v (second visit must bind hub's second transaction)", got.Hops, want)
	}
}

// TestChainFrameProvenance: two frames fetch the same hop URL with their
// transactions interleaved in capture order. Frame provenance keeps each
// chain inside its own frame when both sides are stamped.
func TestChainFrameProvenance(t *testing.T) {
	c := New(nil)
	c.Record(Transaction{URL: "http://serve.example.com/ad", Status: 302,
		Location: "http://hop.example.com/", FrameID: "0.0"}) // 0
	c.Record(Transaction{URL: "http://serve2.example.com/ad", Status: 302,
		Location: "http://hop.example.com/", FrameID: "0.1"}) // 1
	// Frame 0.1's hop lands first in the log; frame 0.0's follows.
	c.Record(Transaction{URL: "http://hop.example.com/", Status: 302,
		Location: "http://land-b.example.com/", FrameID: "0.1"}) // 2
	c.Record(Transaction{URL: "http://hop.example.com/", Status: 302,
		Location: "http://land-a.example.com/", FrameID: "0.0"}) // 3

	a := c.ChainAt(0)
	wantA := []string{"http://serve.example.com/ad", "http://hop.example.com/", "http://land-a.example.com/"}
	if !reflect.DeepEqual(a.Hops, wantA) {
		t.Fatalf("frame 0.0 chain = %v, want %v", a.Hops, wantA)
	}
	b := c.ChainAt(1)
	wantB := []string{"http://serve2.example.com/ad", "http://hop.example.com/", "http://land-b.example.com/"}
	if !reflect.DeepEqual(b.Hops, wantB) {
		t.Fatalf("frame 0.1 chain = %v, want %v", b.Hops, wantB)
	}
}

// TestChainCycleShapeExplicit exercises the cycle accessors on an A→B→C→B
// loop: the shape is [B, C], starting at index 1.
func TestChainCycleShapeExplicit(t *testing.T) {
	c := New(nil)
	record(c, "http://a.example.com/", 302, "http://b.example.com/")
	record(c, "http://b.example.com/", 302, "http://c.example.com/")
	record(c, "http://c.example.com/", 302, "http://b.example.com/")

	ch := c.ChainFrom("http://a.example.com/")
	if !ch.HasCycle() || ch.CycleStart != 1 {
		t.Fatalf("chain = %+v, want cycle starting at 1", ch)
	}
	wantCycle := []string{"http://b.example.com/", "http://c.example.com/"}
	if !reflect.DeepEqual(ch.Cycle(), wantCycle) {
		t.Fatalf("cycle = %v, want %v", ch.Cycle(), wantCycle)
	}
	wantHops := []string{"http://a.example.com/", "http://b.example.com/", "http://c.example.com/", "http://b.example.com/"}
	if !reflect.DeepEqual(ch.Hops, wantHops) {
		t.Fatalf("hops = %v, want %v", ch.Hops, wantHops)
	}
	if ch.Truncated {
		t.Fatal("cycle must be reported as a cycle, not a truncation")
	}
}

// TestChainTruncationBound: an acyclic chain longer than the defensive
// bound reports Truncated instead of being silently cut.
func TestChainTruncationBound(t *testing.T) {
	c := New(nil)
	n := chainMaxHops + 10
	for i := 0; i < n; i++ {
		record(c, hopURL(i), 302, hopURL(i+1))
	}
	ch := c.ChainFrom(hopURL(0))
	if !ch.Truncated {
		t.Fatalf("chain of %d hops not marked truncated: len=%d", n, ch.Len())
	}
	if ch.HasCycle() {
		t.Fatalf("acyclic chain reported a cycle: %+v", ch)
	}
	if ch.Len() != chainMaxHops {
		t.Fatalf("len = %d, want %d", ch.Len(), chainMaxHops)
	}
}

func hopURL(i int) string {
	return "http://hop" + string(rune('a'+i%26)) + "-" + itoa(i) + ".example.com/"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestChainUnfetchedTail: when the browser stopped before fetching the
// final Location target, the resolved hop still belongs to the chain.
func TestChainUnfetchedTail(t *testing.T) {
	c := New(nil)
	record(c, "http://a.example.com/", 302, "http://never-fetched.example.com/")
	ch := c.ChainFrom("http://a.example.com/")
	want := []string{"http://a.example.com/", "http://never-fetched.example.com/"}
	if !reflect.DeepEqual(ch.Hops, want) {
		t.Fatalf("hops = %v, want %v", ch.Hops, want)
	}
}

// TestRedirectChainRelativeLocation covers relative, dot-relative, and
// protocol-relative Location values: each must be resolved against the
// redirecting URL before the next hop is matched.
func TestRedirectChainRelativeLocation(t *testing.T) {
	c := New(nil)
	record(c, "http://a.example.com/ads/serve", 302, "/landing")
	record(c, "http://a.example.com/landing", 302, "../promo/x")
	record(c, "http://a.example.com/promo/x", 302, "//b.example.com/final")
	record(c, "http://b.example.com/final", 200, "")
	want := []string{
		"http://a.example.com/ads/serve",
		"http://a.example.com/landing",
		"http://a.example.com/promo/x",
		"http://b.example.com/final",
	}
	if got := c.RedirectChainFrom("http://a.example.com/ads/serve"); !reflect.DeepEqual(got, want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
}
