// Package report renders a complete study into a single Markdown document
// (the artefact a measurement paper's artifact-evaluation committee would
// want), and encodes the paper's headline claims as programmatic checks so
// a run can grade its own fidelity.
package report

import (
	"fmt"
	"strconv"
	"strings"

	"madave/internal/analysis"
	"madave/internal/core"
	"madave/internal/defense"
	"madave/internal/oracle"
)

// Check is one paper claim evaluated against measured data.
type Check struct {
	// Claim is the paper's statement.
	Claim string
	// Paper and Measured are the two values, rendered.
	Paper    string
	Measured string
	// Pass is whether the measured value preserves the claim's shape.
	Pass bool
}

// PaperChecks grades a report against the paper's headline claims. These
// are the same shapes the test suite asserts; centralizing them here keeps
// tests, tools, and documentation in agreement.
func PaperChecks(rep *analysis.Report) []Check {
	var out []Check
	add := func(claim, paper, measured string, pass bool) {
		out = append(out, Check{Claim: claim, Paper: paper, Measured: measured, Pass: pass})
	}

	rate := rep.Table1.Rate()
	add("about 1% of collected ads are malicious",
		"~1%", fmt.Sprintf("%.2f%%", 100*rate),
		rate > 0.004 && rate < 0.025)

	t1 := rep.Table1.Counts
	add("blacklist detections dominate Table 1",
		"72.6% of incidents", shareStr(t1[oracle.CatBlacklists], rep.Table1.Total),
		rep.Table1.Total == 0 || t1[oracle.CatBlacklists] > t1[oracle.CatSuspRedirect])
	add("suspicious redirections are the clear second category",
		"21.1%", shareStr(t1[oracle.CatSuspRedirect], rep.Table1.Total),
		rep.Table1.Total == 0 || t1[oracle.CatSuspRedirect] >= t1[oracle.CatHeuristics])
	add("payload categories (executables, Flash) are rare",
		"1.0% + 0.5%", shareStr(t1[oracle.CatMaliciousExe]+t1[oracle.CatMaliciousSWF], rep.Table1.Total),
		rep.Table1.Total == 0 ||
			float64(t1[oracle.CatMaliciousExe]+t1[oracle.CatMaliciousSWF]) <= 0.10*float64(rep.Table1.Total))

	if len(rep.Figure1) > 0 {
		add("some networks serve malvertisements in over a third of their traffic",
			"> 1/3", fmt.Sprintf("top ratio %.3f", rep.Figure1[0].Ratio),
			rep.Figure1[0].Ratio > 1.0/3)
	}

	// Figure 2: the top malvertiser by incidents is a small-share network.
	if len(rep.Figure2) > 0 {
		worst := rep.Figure2[0]
		for _, row := range rep.Figure2 {
			if row.Malicious > worst.Malicious {
				worst = row
			}
		}
		add("the top malvertiser holds only a small slice of ad volume",
			"~3% of all ads", fmt.Sprintf("%.2f%%", 100*worst.TotalShare),
			worst.TotalShare < 0.10)
	}

	top, bottom := rep.Clusters.AdShare[analysis.ClusterTop], rep.Clusters.AdShare[analysis.ClusterBottom]
	add("top-10k sites serve the bulk of ads",
		"76.6%", fmt.Sprintf("%.1f%%", 100*top), top > 0.6)
	add("bottom-10k sites serve little",
		"11.6%", fmt.Sprintf("%.1f%%", 100*bottom), bottom < 0.25)
	add("malvertising share tracks ad-volume share across clusters",
		"82.3 vs 76.6", fmt.Sprintf("%.1f vs %.1f",
			100*rep.Clusters.MalShare[analysis.ClusterTop], 100*top),
		rep.Clusters.MalShare[analysis.ClusterTop] > rep.Clusters.MalShare[analysis.ClusterBottom])

	entNews := 0.0
	for _, row := range rep.Figure3 {
		if row.Category == "entertainment" || row.Category == "news" {
			entNews += row.Share
		}
	}
	add("entertainment + news make up about a third of affected sites",
		"~33%", fmt.Sprintf("%.1f%%", 100*entNews),
		len(rep.Figure3) == 0 || (entNews > 0.2 && entNews < 0.5))

	if len(rep.Figure4) > 0 {
		add(".com is the top TLD among malvertising sites",
			"majority", "."+rep.Figure4[0].TLD, rep.Figure4[0].TLD == "com")
	}
	add("generic TLDs carry over two thirds of malvertising",
		"> 66%", fmt.Sprintf("%.1f%%", 100*rep.GenericTLDMalShare),
		rep.GenericTLDMalShare > 0.6)

	add("benign arbitration chains stay within ~15 auctions",
		"max 15", fmt.Sprintf("p99.9 = %d", rep.Figure5.Benign.Quantile(0.999)),
		rep.Figure5.Benign.Quantile(0.999) <= 15)
	add("malicious chains reach far deeper",
		"up to 30", fmt.Sprintf("max = %d", rep.Figure5.Malicious.Max()),
		rep.Figure5.Malicious.Max() > rep.Figure5.Benign.Quantile(0.999))
	add("malicious chains are longer on average (mid-chain bump)",
		"bump in the middle", fmt.Sprintf("means %.2f vs %.2f",
			rep.Figure5.Malicious.Mean(), rep.Figure5.Benign.Mean()),
		rep.Figure5.Malicious.Mean() > rep.Figure5.Benign.Mean())

	add("no crawled publisher uses the iframe sandbox attribute",
		"0", fmt.Sprintf("%d of %d", rep.Sandbox.SandboxedAds, rep.Sandbox.AdFrames),
		rep.Sandbox.SandboxedAds == 0)
	return out
}

// Passed counts passing checks.
func Passed(checks []Check) int {
	n := 0
	for _, c := range checks {
		if c.Pass {
			n++
		}
	}
	return n
}

// Input bundles everything the Markdown report can include. Optional fields
// may be nil/empty.
type Input struct {
	Title      string
	Study      *core.Study
	Results    *core.Results
	Validation *core.Validation
	Defenses   []defense.Comparison
}

// Markdown renders the full study report.
func Markdown(in Input) string {
	var b strings.Builder
	title := in.Title
	if title == "" {
		title = "Malvertising study report"
	}
	fmt.Fprintf(&b, "# %s\n\n", title)

	if in.Study != nil {
		fmt.Fprintf(&b, "Ecosystem: %d ranked sites, %d ad networks, %d campaigns (seed %d).\n\n",
			len(in.Study.Web.Sites), len(in.Study.Eco.Networks),
			len(in.Study.Eco.Campaigns), in.Study.Cfg.Seed)
	}
	if in.Results == nil {
		b.WriteString("_No results._\n")
		return b.String()
	}
	rep := in.Results.Report
	res := in.Results.Oracle

	fmt.Fprintf(&b, "Corpus: **%d unique advertisements**; incidents: **%d (%.2f%%)**.\n\n",
		in.Results.Corpus.Len(), res.MaliciousCount(), 100*res.MaliciousRate())

	// Table 1.
	b.WriteString("## Table 1 — classification of malvertisements\n\n")
	b.WriteString("| Category | Incidents | Share |\n|---|---:|---:|\n")
	for _, cat := range oracle.Categories() {
		n := rep.Table1.Counts[cat]
		fmt.Fprintf(&b, "| %s | %d | %s |\n", cat, n, shareStr(n, rep.Table1.Total))
	}
	fmt.Fprintf(&b, "| **total** | **%d** | |\n\n", rep.Table1.Total)

	// Projection.
	proj := rep.ProjectTo(analysis.PaperCorpusSize)
	b.WriteString("## Projection to the paper's corpus\n\n")
	b.WriteString("| Category | Projected | Paper |\n|---|---:|---:|\n")
	for _, cat := range oracle.Categories() {
		fmt.Fprintf(&b, "| %s | %d | %d |\n", cat, proj.Counts[cat], analysis.PaperTable1[cat])
	}
	fmt.Fprintf(&b, "| **total** | **%d** | **%d** |\n\n", proj.Total, analysis.PaperTable1Total)

	// Networks.
	b.WriteString("## Figures 1 & 2 — ad networks\n\n")
	b.WriteString("| Network | Ads | Malicious | Ratio | Volume share |\n|---|---:|---:|---:|---:|\n")
	for i, row := range rep.Figure1 {
		if i >= 12 {
			fmt.Fprintf(&b, "| _%d more networks_ | | | | |\n", len(rep.Figure1)-i)
			break
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %.3f | %.2f%% |\n",
			row.Network, row.Ads, row.Malicious, row.Ratio, 100*row.TotalShare)
	}
	conc := analysis.Concentrate(rep)
	fmt.Fprintf(&b, "\nConcentration: Gini %.2f, worst network %.1f%% of incidents, top three %.1f%%.\n\n",
		conc.GiniIncidents, 100*conc.TopShare, 100*conc.Top3Share)

	// Clusters, categories, TLDs.
	b.WriteString("## Clusters (§4.2)\n\n| Cluster | Malvertising share | Ad share |\n|---|---:|---:|\n")
	for _, cl := range []string{analysis.ClusterTop, analysis.ClusterBottom, analysis.ClusterOther} {
		fmt.Fprintf(&b, "| %s | %.1f%% | %.1f%% |\n",
			cl, 100*rep.Clusters.MalShare[cl], 100*rep.Clusters.AdShare[cl])
	}
	b.WriteString("\n## Figure 3 — site categories\n\n| Category | Share |\n|---|---:|\n")
	for _, row := range rep.Figure3 {
		fmt.Fprintf(&b, "| %s | %.1f%% |\n", row.Category, 100*row.Share)
	}
	b.WriteString("\n## Figure 4 — TLDs\n\n| TLD | Kind | Share |\n|---|---|---:|\n")
	for _, row := range rep.Figure4 {
		kind := "ccTLD"
		if row.Generic {
			kind = "gTLD"
		}
		fmt.Fprintf(&b, "| .%s | %s | %.1f%% |\n", row.TLD, kind, 100*row.Share)
	}
	fmt.Fprintf(&b, "\nGeneric TLD share of malvertising: **%.1f%%** (paper: >66%%).\n\n",
		100*rep.GenericTLDMalShare)

	// Figure 5.
	b.WriteString("## Figure 5 — arbitration chains\n\n")
	fmt.Fprintf(&b, "- benign: max %d, mean %.2f\n", rep.Figure5.Benign.Max(), rep.Figure5.Benign.Mean())
	fmt.Fprintf(&b, "- malicious: max %d, mean %.2f, share beyond 15 auctions %.2f%%\n\n",
		rep.Figure5.Malicious.Max(), rep.Figure5.Malicious.Mean(),
		100*rep.Figure5.Malicious.TailShare(15))

	// Timeline.
	tl := analysis.Timeline(in.Results.Corpus, res)
	if len(tl) > 1 {
		b.WriteString("## Timeline\n\n| Day | Ads | Malicious | Rate |\n|---:|---:|---:|---:|\n")
		for _, p := range tl {
			fmt.Fprintf(&b, "| %d | %d | %d | %.2f%% |\n", p.Day, p.Ads, p.Malicious, 100*p.Rate())
		}
		b.WriteString("\n")
	}

	// Sandbox.
	fmt.Fprintf(&b, "## Secure environment (§4.4)\n\n%d of %d ad iframes carried the sandbox attribute.\n\n",
		rep.Sandbox.SandboxedAds, rep.Sandbox.AdFrames)

	// Flow-graph oracle (only present when it ran).
	if g := rep.Graph; g != nil {
		fmt.Fprintf(&b, "## Flow-graph oracle\n\n%d of %d ads flagged by structural signals.\n\n", g.Flagged, g.Scanned)
		b.WriteString("| Signal | Count |\n|---|---:|\n")
		for _, row := range g.Signals {
			fmt.Fprintf(&b, "| %s | %d |\n", row.Signal, row.Count)
		}
		b.WriteString("\n| Network | Ads | Flagged | Chain max | Chain mean |\n|---|---:|---:|---:|---:|\n")
		for i, row := range g.Networks {
			if i >= 12 {
				fmt.Fprintf(&b, "| _%d more networks_ | | | | |\n", len(g.Networks)-i)
				break
			}
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %.2f |\n",
				row.Network, row.Ads, row.Flagged, row.MaxChain, row.MeanChain)
		}
		b.WriteString("\n")
	}

	// Validation.
	if in.Validation != nil {
		fmt.Fprintf(&b, "## Oracle validation\n\nPrecision %.3f, recall %.3f (TP=%d FP=%d FN=%d TN=%d).\n\n",
			in.Validation.Precision(), in.Validation.Recall(),
			in.Validation.TruePositives, in.Validation.FalsePositives,
			in.Validation.FalseNegatives, in.Validation.TrueNegatives)
		if in.Validation.GraphEnabled {
			fmt.Fprintf(&b, "With the flow-graph component folded in: precision %.3f, recall %.3f (TP=%d FP=%d FN=%d TN=%d).\n\n",
				in.Validation.CombinedPrecision(), in.Validation.CombinedRecall(),
				in.Validation.CombinedTruePositives, in.Validation.CombinedFalsePositives,
				in.Validation.CombinedFalseNegatives, in.Validation.CombinedTrueNegatives)
		}
	}

	// Defenses.
	if len(in.Defenses) > 0 {
		b.WriteString("## Countermeasures (§5)\n\n| Defense | Baseline | Protected | Reduction |\n|---|---:|---:|---:|\n")
		for _, c := range in.Defenses {
			fmt.Fprintf(&b, "| %s | %.4f | %.4f | %.1f%% |\n",
				c.Name, c.Baseline, c.Protected, 100*c.Reduction())
		}
		b.WriteString("\n")
	}

	// Fidelity checks.
	checks := PaperChecks(rep)
	fmt.Fprintf(&b, "## Fidelity vs the paper — %d/%d checks pass\n\n", Passed(checks), len(checks))
	b.WriteString("| Claim | Paper | Measured | |\n|---|---|---|---|\n")
	for _, c := range checks {
		mark := "✓"
		if !c.Pass {
			mark = "✗"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", c.Claim, c.Paper, c.Measured, mark)
	}
	return b.String()
}

func shareStr(n, total int) string {
	if total == 0 {
		return "-"
	}
	// Append-built "NN.N%" label: strconv formats straight into a stack
	// buffer, no fmt state machine.
	var buf [24]byte
	b := strconv.AppendFloat(buf[:0], 100*float64(n)/float64(total), 'f', 1, 64)
	b = append(b, '%')
	return string(b)
}
