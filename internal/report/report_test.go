package report

import (
	"strings"
	"sync"
	"testing"

	"madave/internal/adnet"
	"madave/internal/analysis"
	"madave/internal/core"
	"madave/internal/defense"
	"madave/internal/oracle"
)

var (
	onceFix sync.Once
	fixS    *core.Study
	fixR    *core.Results
)

func fixture(t *testing.T) (*core.Study, *core.Results) {
	t.Helper()
	onceFix.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Seed = 8
		cfg.CrawlSites = 600
		s, err := core.NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		fixS = s
		fixR = s.Run()
	})
	return fixS, fixR
}

func TestPaperChecksAllPass(t *testing.T) {
	_, r := fixture(t)
	checks := PaperChecks(r.Report)
	if len(checks) < 12 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("FAILED claim %q: paper %s, measured %s", c.Claim, c.Paper, c.Measured)
		}
	}
	if Passed(checks) != len(checks) {
		t.Fatalf("%d/%d checks pass", Passed(checks), len(checks))
	}
}

func TestMarkdownRendering(t *testing.T) {
	s, r := fixture(t)
	v, err := s.Validate(r.Corpus, r.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := defense.SharedBlacklist(s.Cfg.Ads, 50_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	md := Markdown(Input{
		Title:      "Test report",
		Study:      s,
		Results:    r,
		Validation: v,
		Defenses:   []defense.Comparison{cmp},
	})
	for _, want := range []string{
		"# Test report",
		"## Table 1",
		"## Projection to the paper's corpus",
		"4794", // the paper's blacklist count appears in the projection table
		"## Figures 1 & 2",
		"## Clusters",
		"## Figure 5",
		"## Oracle validation",
		"## Countermeasures",
		"shared-blacklist",
		"## Fidelity vs the paper",
		"✓",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
	if strings.Contains(md, "✗") {
		t.Log(md)
		t.Fatal("fidelity check failed inside markdown")
	}
}

func TestMarkdownWithoutResults(t *testing.T) {
	md := Markdown(Input{})
	if !strings.Contains(md, "_No results._") {
		t.Fatalf("markdown = %q", md)
	}
}

func TestPaperChecksEmptyReport(t *testing.T) {
	// A report with no data must not panic; claims gated on data are
	// treated as vacuously passing or failing without crashing.
	checks := PaperChecks(&analysis.Report{
		Table1:   analysis.Table1{Counts: map[oracle.Category]int{}},
		Clusters: analysis.ClusterShares{MalShare: map[string]float64{}, AdShare: map[string]float64{}},
	})
	if len(checks) == 0 {
		t.Fatal("no checks produced")
	}
	_ = adnet.MaxChain
}
