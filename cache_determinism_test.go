package madave

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"madave/internal/memnet"
)

// cacheRun executes crawl + classification for one configuration and
// returns three fingerprints: the crawl-stats/oracle-count string, the
// sorted corpus hash digest, and the sorted incident digest (hash, category,
// evidence per incident). Any divergence between cache-on and cache-off
// shows up byte-for-byte in at least one of them.
func cacheRun(t *testing.T, cfg Config) (string, string, string) {
	t.Helper()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corp, st := s.Crawl()
	res := s.Classify(corp)

	hashes := make([]string, 0, corp.Len())
	for _, ad := range corp.All() {
		hashes = append(hashes, ad.Hash)
	}
	sort.Strings(hashes)

	incidents := make([]string, 0, len(res.Incidents))
	for _, inc := range res.Incidents {
		incidents = append(incidents, fmt.Sprintf("%s|%s|%s", inc.AdHash, inc.Category, inc.Evidence))
	}
	sort.Strings(incidents)

	return fmt.Sprintf("%+v|scanned=%d|malicious=%d|degraded=%d", *st, res.Scanned, res.MaliciousCount(), res.Degraded),
		strings.Join(hashes, "\n"),
		strings.Join(incidents, "\n")
}

// TestCacheDeterminism is the acceptance gate for the memoization layer's
// core contract: caches only ever hold values that are pure functions of
// their keys, so a study with all three caches enabled must be
// byte-identical — crawl stats, corpus, and every incident — to the same
// seed with caches off, independent of worker interleaving and (in the
// chaos variant) fault injection.
func TestCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cache determinism skipped in -short mode")
	}
	const seed = 2828

	base := telemetryStudyConfig(seed)
	// Multi-day crawl: exercises the day component of the honeyclient and
	// blacklist cache keys.
	base.Crawl.Days = 2

	off := base
	on := base
	on.Cache.Enabled = true

	sOff, hOff, iOff := cacheRun(t, off)
	sOn, hOn, iOn := cacheRun(t, on)
	if sOn != sOff {
		t.Fatalf("stats diverged with caches on vs off:\n on: %s\noff: %s", sOn, sOff)
	}
	if hOn != hOff {
		t.Fatal("corpus diverged with caches on vs off")
	}
	if iOn != iOff {
		t.Fatalf("incidents diverged with caches on vs off:\n on: %s\noff: %s", iOn, iOff)
	}

	// Worker-interleaving independence: a serial cached run equals the
	// parallel cached run (cache fill order must not leak into verdicts).
	serial := on
	serial.Crawl.Parallelism = 1
	serial.OracleParallelism = 1
	sSer, hSer, iSer := cacheRun(t, serial)
	if sSer != sOn || hSer != hOn || iSer != iOn {
		t.Fatal("cached study depends on worker interleaving")
	}

	// Tiny caches: constant eviction pressure must be invisible too —
	// an evicted-and-recomputed value equals the cached one by purity.
	tiny := on
	tiny.Cache.HoneyclientEntries = 8
	tiny.Cache.BlacklistEntries = 8
	tiny.Cache.AVScanEntries = 8
	sTiny, hTiny, iTiny := cacheRun(t, tiny)
	if sTiny != sOn || hTiny != hOn || iTiny != iOn {
		t.Fatal("cached study depends on cache capacity (eviction leaked into verdicts)")
	}
}

// TestCacheDeterminismUnderChaos repeats the on/off comparison with fault
// injection: chaos faults are a pure function of (seed, URL, attempt), so
// even degraded analyses memoize soundly.
func TestCacheDeterminismUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("cache chaos determinism skipped in -short mode")
	}
	const seed = 2829

	base := telemetryStudyConfig(seed)
	prof := memnet.UniformProfile(0.25)
	base.Chaos = &prof

	on := base
	on.Cache.Enabled = true

	sOff, hOff, iOff := cacheRun(t, base)
	sOn, hOn, iOn := cacheRun(t, on)
	if sOn != sOff {
		t.Fatalf("chaotic stats diverged with caches on vs off:\n on: %s\noff: %s", sOn, sOff)
	}
	if hOn != hOff {
		t.Fatal("chaotic corpus diverged with caches on vs off")
	}
	if iOn != iOff {
		t.Fatalf("chaotic incidents diverged with caches on vs off:\n on: %s\noff: %s", iOn, iOff)
	}
}
