package madave

// The benchmark harness regenerates every table and figure in the paper's
// evaluation (§4) plus the §5 countermeasures, reporting each experiment's
// headline number as a benchmark metric so `go test -bench` doubles as the
// reproduction run:
//
//	Table 1    -> BenchmarkTable1Classification      (malicious_pct)
//	Figure 1   -> BenchmarkFigure1NetworkMaliciousRatio (top_network_ratio)
//	Figure 2   -> BenchmarkFigure2NetworkAdShare     (rogue_share_pct)
//	§4.2       -> BenchmarkClusterShares             (top10k_ad_share_pct, ...)
//	Figure 3   -> BenchmarkFigure3Categories         (ent_news_share_pct)
//	Figure 4   -> BenchmarkFigure4TLDs               (generic_tld_share_pct)
//	Figure 5   -> BenchmarkFigure5ArbitrationChains  (malicious_chain_max, ...)
//	§4.4       -> BenchmarkSandboxUsage              (sandboxed_ads)
//	§5         -> BenchmarkDefenses                  (reduction_pct per defense)
//
// Ablations (see DESIGN.md §6) measure the design choices the paper's
// methodology depends on: the >5 blacklist threshold, EasyList matching
// precision, and the honeyclient's per-heuristic contribution.

import (
	"sync"
	"testing"

	"madave/internal/analysis"
	"madave/internal/blacklist"
	"madave/internal/defense"
	"madave/internal/easylist"
	"madave/internal/honeyclient"
	"madave/internal/oracle"
	"madave/internal/stats"
)

var (
	benchOnce sync.Once
	benchS    *Study
	benchR    *Results
)

// benchWorld runs one fixed study shared by every experiment benchmark.
func benchWorld(b *testing.B) (*Study, *Results) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Seed = 2014 // the venue year; any seed reproduces the shapes
		cfg.CrawlSites = 900
		s, err := NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		benchS = s
		benchR = s.Run()
	})
	return benchS, benchR
}

// analyzeInput rebuilds the analysis input for per-iteration reruns.
func analyzeInput(s *Study, r *Results) analysis.Input {
	return analysis.Input{
		Corpus:     r.Corpus,
		Result:     r.Oracle,
		TotalSites: len(s.Web.Sites),
		CrawlStats: r.CrawlStats,
	}
}

// BenchmarkCrawl measures the collection phase (§3.1): full browser
// rendering of publisher pages, EasyList iframe classification, and corpus
// snapshotting.
func BenchmarkCrawl(b *testing.B) {
	s, _ := benchWorld(b)
	sites := s.Web.TopSlice(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corp, _ := s.CrawlSubset(sites)
		if corp.Len() == 0 {
			b.Fatal("no ads collected")
		}
	}
}

// BenchmarkTable1Classification regenerates Table 1: the oracle classifies
// the corpus and the incident mix is reported.
func BenchmarkTable1Classification(b *testing.B) {
	s, r := benchWorld(b)
	sample := sampleCorpus(r.Corpus, 300)
	b.ResetTimer()
	var res *oracle.Result
	for i := 0; i < b.N; i++ {
		res = s.Oracle.ClassifyCorpus(sample)
	}
	b.StopTimer()

	full := r.Oracle
	total := float64(full.MaliciousCount())
	b.ReportMetric(100*full.MaliciousRate(), "malicious_pct")                    // paper: ~1%
	b.ReportMetric(share(full, oracle.CatBlacklists, total), "blacklists_share") // paper: 72.6%
	b.ReportMetric(share(full, oracle.CatSuspRedirect, total), "redirect_share") // paper: 21.1%
	b.ReportMetric(share(full, oracle.CatHeuristics, total), "heuristics_share") // paper: 4.7%
	_ = res
}

func share(r *oracle.Result, cat oracle.Category, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(r.ByCategory[cat]) / total
}

// BenchmarkFigure1NetworkMaliciousRatio regenerates Figure 1: per-network
// malvertising ratios, sorted.
func BenchmarkFigure1NetworkMaliciousRatio(b *testing.B) {
	s, r := benchWorld(b)
	in := analyzeInput(s, r)
	var rep *analysis.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = analysis.Analyze(in)
	}
	b.StopTimer()
	if len(rep.Figure1) == 0 {
		b.Fatal("no offending networks")
	}
	b.ReportMetric(rep.Figure1[0].Ratio, "top_network_ratio") // paper: > 1/3
	b.ReportMetric(float64(len(rep.Figure1)), "offending_networks")
}

// BenchmarkFigure2NetworkAdShare regenerates Figure 2: volume share of the
// offending networks, highlighting the ~3% rogue.
func BenchmarkFigure2NetworkAdShare(b *testing.B) {
	s, r := benchWorld(b)
	in := analyzeInput(s, r)
	var rep *analysis.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = analysis.Analyze(in)
	}
	b.StopTimer()
	if len(rep.Figure2) == 0 {
		b.Fatal("no rows")
	}
	// The paper's headline: the network responsible for the most
	// malvertisements held only ~3% of total ad volume.
	worst := rep.Figure2[0]
	for _, row := range rep.Figure2 {
		if row.Malicious > worst.Malicious {
			worst = row
		}
	}
	totalMal := 0
	for _, row := range rep.Figure2 {
		totalMal += row.Malicious
	}
	b.ReportMetric(100*worst.TotalShare, "rogue_volume_share_pct") // paper: ~3%
	b.ReportMetric(100*float64(worst.Malicious)/float64(totalMal), "rogue_incident_share_pct")
}

// BenchmarkClusterShares regenerates the §4.2 cluster split.
func BenchmarkClusterShares(b *testing.B) {
	s, r := benchWorld(b)
	in := analyzeInput(s, r)
	var rep *analysis.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = analysis.Analyze(in)
	}
	b.StopTimer()
	b.ReportMetric(100*rep.Clusters.AdShare[analysis.ClusterTop], "top10k_ad_share_pct")    // paper: 76.6
	b.ReportMetric(100*rep.Clusters.MalShare[analysis.ClusterTop], "top10k_mal_share_pct")  // paper: 82.3
	b.ReportMetric(100*rep.Clusters.AdShare[analysis.ClusterBottom], "bottom_ad_share_pct") // paper: 11.6
}

// BenchmarkFigure3Categories regenerates Figure 3: categories of sites
// serving malvertisements.
func BenchmarkFigure3Categories(b *testing.B) {
	s, r := benchWorld(b)
	in := analyzeInput(s, r)
	var rep *analysis.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = analysis.Analyze(in)
	}
	b.StopTimer()
	entNews := 0.0
	for _, row := range rep.Figure3 {
		if row.Category == "entertainment" || row.Category == "news" {
			entNews += row.Share
		}
	}
	b.ReportMetric(100*entNews, "ent_news_share_pct") // paper: ~1/3
}

// BenchmarkFigure4TLDs regenerates Figure 4: TLDs of malvertising sites.
func BenchmarkFigure4TLDs(b *testing.B) {
	s, r := benchWorld(b)
	in := analyzeInput(s, r)
	var rep *analysis.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = analysis.Analyze(in)
	}
	b.StopTimer()
	comShare := 0.0
	if len(rep.Figure4) > 0 && rep.Figure4[0].TLD == "com" {
		comShare = rep.Figure4[0].Share
	}
	b.ReportMetric(100*comShare, "com_share_pct")                       // paper: majority
	b.ReportMetric(100*rep.GenericTLDMalShare, "generic_tld_share_pct") // paper: >66%
}

// BenchmarkFigure5ArbitrationChains regenerates Figure 5: benign vs
// malicious arbitration chain-length distributions.
func BenchmarkFigure5ArbitrationChains(b *testing.B) {
	s, r := benchWorld(b)
	in := analyzeInput(s, r)
	var rep *analysis.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = analysis.Analyze(in)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Figure5.Benign.Max()), "benign_chain_max")       // paper: 15
	b.ReportMetric(float64(rep.Figure5.Malicious.Max()), "malicious_chain_max") // paper: 30
	b.ReportMetric(100*rep.Figure5.Malicious.TailShare(15), "beyond15_pct")     // paper: ~2%
}

// BenchmarkSandboxUsage regenerates the §4.4 census: how many ad iframes
// carry the sandbox attribute.
func BenchmarkSandboxUsage(b *testing.B) {
	s, r := benchWorld(b)
	in := analyzeInput(s, r)
	var rep *analysis.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = analysis.Analyze(in)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Sandbox.SandboxedAds), "sandboxed_ads") // paper: 0
	b.ReportMetric(float64(rep.Sandbox.AdFrames), "ad_frames")
}

// BenchmarkDefenses measures the §5 countermeasures' exposure reductions.
func BenchmarkDefenses(b *testing.B) {
	s, r := benchWorld(b)
	var cmps []Comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cmps, err = EvaluateDefenses(s, r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, c := range cmps {
		b.ReportMetric(100*c.Reduction(), c.Name+"_reduction_pct")
	}
}

// BenchmarkEasyListCorpusReplay replays every collected ad frame against
// the study's EasyList through the token-indexed engine — the workload the
// §5 adblock defense evaluation runs over the whole corpus — and
// BenchmarkEasyListCorpusReplayLinear is the same replay through the
// pre-index linear scan, so the speedup over the real corpus is visible
// alongside the synthetic-list microbenchmarks in internal/easylist.
func BenchmarkEasyListCorpusReplay(b *testing.B) {
	s, r := benchWorld(b)
	ads := r.Corpus.All()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	ctx := easylist.NewRequestCtx()
	b.ReportAllocs()
	b.ResetTimer()
	blocked := 0
	for i := 0; i < b.N; i++ {
		ad := ads[i%len(ads)]
		if ok, _ := s.List.MatchCtx(ctx, easylist.Request{
			URL: ad.FrameURL, Type: easylist.TypeSubdocument, DocHost: ad.PubHost,
		}); ok {
			blocked++
		}
	}
	b.StopTimer()
	if blocked == 0 {
		b.Fatal("no ad frames blocked")
	}
}

func BenchmarkEasyListCorpusReplayLinear(b *testing.B) {
	s, r := benchWorld(b)
	ads := r.Corpus.All()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := ads[i%len(ads)]
		s.List.MatchLinear(easylist.Request{
			URL: ad.FrameURL, Type: easylist.TypeSubdocument, DocHost: ad.PubHost,
		})
	}
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkAblationBlacklistThreshold compares the paper's ">5 lists" rule
// with naive 1-list matching: the naive rule floods the results with
// benign domains that appear on a list or two.
func BenchmarkAblationBlacklistThreshold(b *testing.B) {
	s, r := benchWorld(b)
	var strictFPs, naiveFPs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strict := blacklist.Build(s.Eco, s.Cfg.Seed)
		naive := blacklist.Build(s.Eco, s.Cfg.Seed)
		naive.Threshold = 0 // "any listing means malicious"
		strictFPs, naiveFPs = 0, 0
		for _, ad := range r.Corpus.All() {
			truth, _ := s.GroundTruth(ad)
			if truth == nil || truth.IsMalicious() {
				continue
			}
			if _, hit := strict.AnyMalicious(ad.Hosts); hit {
				strictFPs++
			}
			if _, hit := naive.AnyMalicious(ad.Hosts); hit {
				naiveFPs++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(strictFPs), "fp_threshold5")
	b.ReportMetric(float64(naiveFPs), "fp_threshold0")
}

// BenchmarkAblationEasyListVsNaive compares EasyList iframe classification
// against naive "the URL contains 'ad'" substring matching.
func BenchmarkAblationEasyListVsNaive(b *testing.B) {
	s, _ := benchWorld(b)
	// Assemble labelled frame URLs: ad (network serve endpoints) and
	// content (widget + publisher pages).
	type labelled struct {
		url  string
		isAd bool
	}
	var frames []labelled
	for _, n := range s.Eco.Networks {
		frames = append(frames, labelled{"http://" + n.Domain + "/serve?pub=x&slot=0&imp=a&hop=0", true})
	}
	frames = append(frames, labelled{"http://cdn.widgetworks.com/embed?site=x", false})
	for _, site := range s.Web.TopSlice(60) {
		frames = append(frames, labelled{"http://" + site.Host + "/", false})
	}
	var elCorrect, naiveCorrect int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elCorrect, naiveCorrect = 0, 0
		for _, f := range frames {
			el, _ := s.List.Match(easylist.Request{URL: f.url, Type: easylist.TypeSubdocument})
			if el == f.isAd {
				elCorrect++
			}
			naive := containsAd(f.url)
			if naive == f.isAd {
				naiveCorrect++
			}
		}
	}
	b.StopTimer()
	total := float64(len(frames))
	b.ReportMetric(100*float64(elCorrect)/total, "easylist_accuracy_pct")
	b.ReportMetric(100*float64(naiveCorrect)/total, "naive_accuracy_pct")
}

func containsAd(url string) bool {
	for i := 0; i+2 <= len(url); i++ {
		if url[i] == 'a' && url[i+1] == 'd' {
			return true
		}
	}
	return false
}

// BenchmarkAblationArbitrationPenalty sweeps the penalty threshold of the
// §5.1 ban policy: stricter thresholds ban more networks and cut exposure
// further.
func BenchmarkAblationArbitrationPenalty(b *testing.B) {
	s, _ := benchWorld(b)
	var strict, lax defense.Comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strict = defense.PenalizeNetworks(s.Eco, 100_000, 0.05, 1)
		lax = defense.PenalizeNetworks(s.Eco, 100_000, 0.30, 1)
	}
	b.StopTimer()
	b.ReportMetric(100*strict.Reduction(), "reduction_thresh05_pct")
	b.ReportMetric(100*lax.Reduction(), "reduction_thresh30_pct")
}

// BenchmarkAblationHoneyclientHeuristics toggles the honeyclient's
// detectors one at a time and reports how many incidents each configuration
// finds — each detector's contribution to Table 1.
func BenchmarkAblationHoneyclientHeuristics(b *testing.B) {
	s, r := benchWorld(b)
	// The sample keeps every incident ad (the ablation's subject) plus a
	// slice of benign ads for the false-positive side.
	flagged := map[string]bool{}
	for _, inc := range r.Oracle.Incidents {
		flagged[inc.AdHash] = true
	}
	sample := NewCorpus()
	benignKept := 0
	for _, ad := range r.Corpus.All() {
		if flagged[ad.Hash] {
			sample.Add(ad)
		} else if benignKept < 200 {
			benignKept++
			sample.Add(ad)
		}
	}

	classify := func(noRedirect, noHijack, noModel bool) int {
		h := honeyclient.New(s.Universe, s.Cfg.Seed)
		h.DisableRedirectHeuristics = noRedirect
		h.DisableHijackDetection = noHijack
		h.DisableModel = noModel
		ora := oracle.New(h, s.Oracle.Lists, s.Oracle.Scanner)
		ora.Parallelism = 8
		return ora.ClassifyCorpus(sample).MaliciousCount()
	}

	var full, noRedir, noHijack, noModel int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = classify(false, false, false)
		noRedir = classify(true, false, false)
		noHijack = classify(false, true, false)
		noModel = classify(false, false, true)
	}
	b.StopTimer()
	b.ReportMetric(float64(full), "incidents_full")
	b.ReportMetric(float64(full-noRedir), "lost_without_redirect_heur")
	b.ReportMetric(float64(full-noHijack), "lost_without_hijack_det")
	b.ReportMetric(float64(full-noModel), "lost_without_model")
}

// BenchmarkServeDecision measures the raw arbitration walk: the hot inner
// loop of every impression in the simulation.
func BenchmarkServeDecision(b *testing.B) {
	s, _ := benchWorld(b)
	rng := stats.NewRNG(1)
	n := len(s.Eco.Networks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := s.Eco.Serve(rng, i%n)
		if d.Campaign == nil {
			b.Fatal("nil campaign")
		}
	}
}

// BenchmarkHoneyclientAnalyze measures one full instrumented ad execution —
// the oracle's unit of work.
func BenchmarkHoneyclientAnalyze(b *testing.B) {
	s, r := benchWorld(b)
	ads := r.Corpus.All()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := s.Oracle.Honey.Analyze(ads[i%len(ads)].FrameURL)
		if len(rep.Hosts) == 0 {
			b.Fatal("no hosts")
		}
	}
}

// sampleCorpus takes every k-th ad to build a smaller corpus.
func sampleCorpus(c *Corpus, n int) *Corpus {
	all := c.All()
	out := NewCorpus()
	if len(all) == 0 {
		return out
	}
	stride := len(all) / n
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(all); i += stride {
		out.Add(all[i])
	}
	return out
}
