package madave

// The pipeline benchmark suite measures the system's throughput rather than
// the paper's numbers: how fast the crawler turns sites into corpus ads,
// how fast the EasyList engine classifies a frame, and how fast the
// honeyclient executes one ad. TestEmitBenchPipeline packages the results
// as BENCH_pipeline.json (set BENCH_PIPELINE_OUT=path), the artifact the CI
// bench step uploads so throughput regressions are visible per commit.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"madave/internal/easylist"
	"madave/internal/flowgraph"
	"madave/internal/honeyclient"
	"madave/internal/journal"
	"madave/internal/stats"
	"madave/internal/stream"
)

// BenchmarkPipelineCrawl measures the collection phase end to end and
// reports crawl throughput as pages/sec and ads/sec.
func BenchmarkPipelineCrawl(b *testing.B) {
	s, _ := benchWorld(b)
	sites := s.Web.TopSlice(20)
	pages, ads := int64(0), 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corp, st := s.CrawlSubset(sites)
		if corp.Len() == 0 {
			b.Fatal("no ads collected")
		}
		pages += st.PagesVisited
		ads += corp.Len()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(pages)/sec, "pages/sec")
		b.ReportMetric(float64(ads)/sec, "ads/sec")
	}
}

// BenchmarkPipelineMatch measures one EasyList classification through the
// token-indexed engine — ns/op is the headline number.
func BenchmarkPipelineMatch(b *testing.B) {
	s, r := benchWorld(b)
	ads := r.Corpus.All()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	ctx := easylist.NewRequestCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := ads[i%len(ads)]
		s.List.MatchCtx(ctx, easylist.Request{
			URL: ad.FrameURL, Type: easylist.TypeSubdocument, DocHost: ad.PubHost,
		})
	}
}

// BenchmarkPipelineAnalyze measures one full instrumented ad execution (the
// oracle's unit of work) and reports it as ads/sec alongside ns/op.
func BenchmarkPipelineAnalyze(b *testing.B) {
	s, r := benchWorld(b)
	ads := r.Corpus.All()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := s.Oracle.Honey.Analyze(ads[i%len(ads)].FrameURL)
		if len(rep.Hosts) == 0 {
			b.Fatal("no hosts")
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ads/sec")
	}
}

// benchImpressionStream Zipf-samples the corpus into a duplicate-heavy ad
// sequence. The corpus itself is content-hash deduplicated — replaying it
// uniformly never repeats a frame URL — but the live impression stream the
// oracle actually faces repeats popular creatives constantly (the paper's
// 673,596 ads deduplicate to far fewer distinct chains). The stream, not
// the deduplicated corpus, is what memoization accelerates.
func benchImpressionStream(b *testing.B, ads []*Ad) []*Ad {
	b.Helper()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	rng := stats.NewRNG(2014).Fork("bench-impression-stream")
	zipf := stats.NewZipf(len(ads), 1.1)
	stream := make([]*Ad, 4096)
	for i := range stream {
		stream[i] = ads[zipf.Sample(rng)]
	}
	return stream
}

// benchAnalyzeStream drives one honeyclient over the impression stream and
// reports ads/sec; shared by the cache-off and cached variants.
func benchAnalyzeStream(b *testing.B, h *honeyclient.Honeyclient, stream []*Ad) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := stream[i%len(stream)]
		rep := h.AnalyzeAdContext(context.Background(), ad.FrameURL, ad.Day)
		if len(rep.Hosts) == 0 {
			b.Fatal("no hosts")
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ads/sec")
	}
}

// BenchmarkPipelineAnalyzeCacheOff is the memoization baseline: every
// impression re-executes in full, duplicates included.
func BenchmarkPipelineAnalyzeCacheOff(b *testing.B) {
	s, r := benchWorld(b)
	stream := benchImpressionStream(b, r.Corpus.All())
	benchAnalyzeStream(b, honeyclient.New(s.Universe, s.Cfg.Seed), stream)
}

// BenchmarkPipelineAnalyzeGraph is the cache-off stream with the flow-graph
// oracle enabled: every impression additionally builds the per-page flow
// graph and classifies its structural features. Its delta over
// PipelineAnalyzeCacheOff is the graph component's per-ad cost.
func BenchmarkPipelineAnalyzeGraph(b *testing.B) {
	s, r := benchWorld(b)
	stream := benchImpressionStream(b, r.Corpus.All())
	h := honeyclient.New(s.Universe, s.Cfg.Seed)
	h.EnableGraph(flowgraph.DefaultPolicy())
	benchAnalyzeStream(b, h, stream)
}

// BenchmarkPipelineAnalyzeCached is the same stream through the report
// cache; hit_ratio reports how much of the stream was served from memory.
func BenchmarkPipelineAnalyzeCached(b *testing.B) {
	s, r := benchWorld(b)
	stream := benchImpressionStream(b, r.Corpus.All())
	h := honeyclient.New(s.Universe, s.Cfg.Seed)
	h.EnableCache(0)
	benchAnalyzeStream(b, h, stream)
	if st, ok := h.CacheStats(); ok && st.Lookups() > 0 {
		b.ReportMetric(st.HitRatio(), "hit_ratio")
	}
}

// benchStreamStudy builds the small fixed study the streaming benchmark
// drives; study construction happens outside the timed region.
func benchStreamStudy(tb testing.TB) *Study {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 2014
	cfg.CrawlSites = 60
	cfg.Crawl.Refreshes = 2
	cfg.Crawl.Parallelism = 4
	s, err := NewStudy(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkPipelineStream measures the crash-safe streaming service end to
// end — supervised stages, journal commits, online aggregation — and reports
// throughput as visits/sec and ads/sec.
func BenchmarkPipelineStream(b *testing.B) {
	s := benchStreamStudy(b)
	visits, ads := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := stream.NewService(s, stream.ServiceConfig{
			Journal: journal.NewMem(), CheckpointEvery: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := svc.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Visits == 0 {
			b.Fatal("streamed no visits")
		}
		visits += res.Summary.Visits
		ads += res.Summary.AdFrames
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(visits)/sec, "visits/sec")
		b.ReportMetric(float64(ads)/sec, "ads/sec")
	}
}

// benchStreamOverload runs one serve-mode service into a deliberately tiny
// admission buffer and returns the shed accounting, so the bench artifact
// records the overload counters (offered/delivered/shed) per commit.
func benchStreamOverload(tb testing.TB) benchResult {
	tb.Helper()
	svc, err := stream.NewService(benchStreamStudy(tb), stream.ServiceConfig{
		Journal:         journal.NewMem(),
		CheckpointEvery: -1,
		Serve:           true,
		MaxImpressions:  600,
		ShedCapacity:    4,
		CrawlWorkers:    2,
		AnalyzeWorkers:  2,
		Stream:          stream.Config{Queue: 4},
	})
	if err != nil {
		tb.Fatal(err)
	}
	res, err := svc.Run(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	st := res.Ops.Shed
	if st.Shed+st.Delivered != st.Offered {
		tb.Fatalf("shed accounting does not conserve: %+v", st)
	}
	return benchResult{
		Name: "StreamOverloadShed",
		N:    1,
		Metrics: map[string]float64{
			"offered":    float64(st.Offered),
			"delivered":  float64(st.Delivered),
			"shed":       float64(st.Shed),
			"shed_ratio": float64(st.Shed) / float64(st.Offered),
			"queue_cap":  4,
			"restarts":   float64(res.Ops.Restarts),
		},
	}
}

// benchResult is one benchmark's row in BENCH_pipeline.json. The alloc
// columns come from testing.BenchmarkResult's memory statistics (every
// benchmark here calls b.ReportAllocs), so the committed artifact carries
// an allocation baseline per benchmark and the CI bench-diff job can fail
// on allocation regressions, not just wall-clock ones.
type benchResult struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the BENCH_pipeline.json document.
type benchReport struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Results   []benchResult `json:"results"`
}

// TestEmitBenchPipeline runs the pipeline benchmarks via testing.Benchmark
// and writes the JSON artifact. It is opt-in (skipped unless
// BENCH_PIPELINE_OUT names the output file) so the regular test run stays
// fast.
func TestEmitBenchPipeline(t *testing.T) {
	out := os.Getenv("BENCH_PIPELINE_OUT")
	if out == "" {
		t.Skip("set BENCH_PIPELINE_OUT=BENCH_pipeline.json to emit the benchmark artifact")
	}
	run := func(name string, fn func(*testing.B)) benchResult {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", name)
		}
		res := benchResult{
			Name:        name,
			N:           r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		return res
	}
	cacheOff := run("PipelineAnalyzeCacheOff", BenchmarkPipelineAnalyzeCacheOff)
	graphOn := run("PipelineAnalyzeGraph", BenchmarkPipelineAnalyzeGraph)
	cached := run("PipelineAnalyzeCached", BenchmarkPipelineAnalyzeCached)
	jsCold := run("MinijsCompiledCold", BenchmarkMinijsCompiledCold)
	jsWarm := run("MinijsCompiledWarm", BenchmarkMinijsCompiledWarm)
	jsTree := run("MinijsTreeWalk", BenchmarkMinijsTreeWalk)
	rep := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Results: []benchResult{
			run("PipelineCrawl", BenchmarkPipelineCrawl),
			run("PipelineMatch", BenchmarkPipelineMatch),
			run("PipelineAnalyze", BenchmarkPipelineAnalyze),
			run("PipelineStream", BenchmarkPipelineStream),
			benchStreamOverload(t),
			cacheOff,
			graphOn,
			cached,
			jsCold,
			jsWarm,
			jsTree,
		},
	}

	// The memoization gate: on the duplicate-heavy impression stream the
	// cached analyzer must be strictly faster than the baseline, or the
	// cache layer has regressed into overhead.
	offRate, onRate := cacheOff.Metrics["ads/sec"], cached.Metrics["ads/sec"]
	if offRate <= 0 || onRate <= offRate {
		t.Errorf("cached PipelineAnalyze not faster: %.0f ads/sec cached vs %.0f cache-off (hit ratio %.2f)",
			onRate, offRate, cached.Metrics["hit_ratio"])
	} else {
		t.Logf("cache speedup: %.1fx (%.0f -> %.0f ads/sec, hit ratio %.2f)",
			onRate/offRate, offRate, onRate, cached.Metrics["hit_ratio"])
	}

	// The compiler gate: warm compiled execution (code-cache hit + bytecode
	// VM) must be strictly faster than the seed engine's re-parse +
	// tree-walk on the same creative corpus, or the compile pipeline has
	// regressed into overhead.
	if jsWarm.NsPerOp <= 0 || jsWarm.NsPerOp >= jsTree.NsPerOp {
		t.Errorf("warm compiled minijs not faster than tree-walk: %d ns/op compiled vs %d ns/op tree-walk (cold %d)",
			jsWarm.NsPerOp, jsTree.NsPerOp, jsCold.NsPerOp)
	} else {
		t.Logf("minijs compile speedup: %.1fx (tree-walk %d -> warm %d ns/op, cold %d)",
			float64(jsTree.NsPerOp)/float64(jsWarm.NsPerOp), jsTree.NsPerOp, jsWarm.NsPerOp, jsCold.NsPerOp)
	}

	// The graph-oracle overhead gate: building and classifying the flow graph
	// must stay a bounded per-ad surcharge — under 2.5x the plain analyzer in
	// wall clock, and within a hard alloc ceiling (measured 275 allocs/op;
	// the ceiling leaves headroom for benign drift, and the committed
	// BENCH_pipeline.json row lets cmd/benchdiff catch creeping regressions).
	if cacheOff.NsPerOp > 0 && graphOn.NsPerOp >= cacheOff.NsPerOp*5/2 {
		t.Errorf("graph oracle overhead gate failed: %d ns/op with graph vs %d plain (>2.5x)",
			graphOn.NsPerOp, cacheOff.NsPerOp)
	} else {
		t.Logf("graph oracle overhead: %.2fx (%d -> %d ns/op)",
			float64(graphOn.NsPerOp)/float64(cacheOff.NsPerOp), cacheOff.NsPerOp, graphOn.NsPerOp)
	}
	if graphOn.AllocsPerOp > 320 {
		t.Errorf("PipelineAnalyzeGraph alloc gate failed: %d allocs/op > ceiling 320", graphOn.AllocsPerOp)
	}

	// The zero-allocation-hot-paths gates. The ns ceilings are the
	// pre-optimization committed baselines (121084 / 110176 ns/op on the
	// reference runner) divided by the required 1.3x speedup; the alloc
	// ceilings are hard counts — allocations per op are deterministic, so
	// unlike wall clock they gate exactly, with headroom above the current
	// measurements (171 / ~210 allocs/op) to absorb benign drift.
	gates := []struct {
		res       benchResult
		maxNs     int64
		maxAllocs int64
	}{
		{jsWarm, 121084 * 10 / 13, 391},   // >=1.3x over baseline; 40% below 652 allocs/op
		{cacheOff, 110176 * 10 / 13, 256}, // >=1.3x over baseline; 40% below 427 allocs/op
	}
	for _, g := range gates {
		switch {
		case g.res.NsPerOp > g.maxNs:
			t.Errorf("%s speedup gate failed: %d ns/op > ceiling %d ns/op (1.3x over committed baseline)",
				g.res.Name, g.res.NsPerOp, g.maxNs)
		case g.res.AllocsPerOp > g.maxAllocs:
			t.Errorf("%s alloc gate failed: %d allocs/op > ceiling %d allocs/op",
				g.res.Name, g.res.AllocsPerOp, g.maxAllocs)
		default:
			t.Logf("%s gates pass: %d ns/op (ceiling %d), %d allocs/op (ceiling %d), %d B/op",
				g.res.Name, g.res.NsPerOp, g.maxNs, g.res.AllocsPerOp, g.maxAllocs, g.res.BytesPerOp)
		}
	}

	write := func(path string, rep benchReport) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("benchmark artifact written to %s", path)
	}
	write(out, rep)
	// A second artifact holding only the cache comparison rows, so the CI
	// job can upload the cache-off and cache-on variants side by side.
	if cachedOut := os.Getenv("BENCH_PIPELINE_CACHED_OUT"); cachedOut != "" {
		cmp := rep
		cmp.Results = []benchResult{cacheOff, cached}
		write(cachedOut, cmp)
	}
}
