package madave

// The pipeline benchmark suite measures the system's throughput rather than
// the paper's numbers: how fast the crawler turns sites into corpus ads,
// how fast the EasyList engine classifies a frame, and how fast the
// honeyclient executes one ad. TestEmitBenchPipeline packages the results
// as BENCH_pipeline.json (set BENCH_PIPELINE_OUT=path), the artifact the CI
// bench step uploads so throughput regressions are visible per commit.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"madave/internal/easylist"
)

// BenchmarkPipelineCrawl measures the collection phase end to end and
// reports crawl throughput as pages/sec and ads/sec.
func BenchmarkPipelineCrawl(b *testing.B) {
	s, _ := benchWorld(b)
	sites := s.Web.TopSlice(20)
	pages, ads := int64(0), 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corp, st := s.CrawlSubset(sites)
		if corp.Len() == 0 {
			b.Fatal("no ads collected")
		}
		pages += st.PagesVisited
		ads += corp.Len()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(pages)/sec, "pages/sec")
		b.ReportMetric(float64(ads)/sec, "ads/sec")
	}
}

// BenchmarkPipelineMatch measures one EasyList classification through the
// token-indexed engine — ns/op is the headline number.
func BenchmarkPipelineMatch(b *testing.B) {
	s, r := benchWorld(b)
	ads := r.Corpus.All()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	ctx := easylist.NewRequestCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := ads[i%len(ads)]
		s.List.MatchCtx(ctx, easylist.Request{
			URL: ad.FrameURL, Type: easylist.TypeSubdocument, DocHost: ad.PubHost,
		})
	}
}

// BenchmarkPipelineAnalyze measures one full instrumented ad execution (the
// oracle's unit of work) and reports it as ads/sec alongside ns/op.
func BenchmarkPipelineAnalyze(b *testing.B) {
	s, r := benchWorld(b)
	ads := r.Corpus.All()
	if len(ads) == 0 {
		b.Fatal("empty corpus")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := s.Oracle.Honey.Analyze(ads[i%len(ads)].FrameURL)
		if len(rep.Hosts) == 0 {
			b.Fatal("no hosts")
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ads/sec")
	}
}

// benchResult is one benchmark's row in BENCH_pipeline.json.
type benchResult struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp int64              `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the BENCH_pipeline.json document.
type benchReport struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Results   []benchResult `json:"results"`
}

// TestEmitBenchPipeline runs the pipeline benchmarks via testing.Benchmark
// and writes the JSON artifact. It is opt-in (skipped unless
// BENCH_PIPELINE_OUT names the output file) so the regular test run stays
// fast.
func TestEmitBenchPipeline(t *testing.T) {
	out := os.Getenv("BENCH_PIPELINE_OUT")
	if out == "" {
		t.Skip("set BENCH_PIPELINE_OUT=BENCH_pipeline.json to emit the benchmark artifact")
	}
	run := func(name string, fn func(*testing.B)) benchResult {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", name)
		}
		res := benchResult{Name: name, N: r.N, NsPerOp: r.NsPerOp()}
		if len(r.Extra) > 0 {
			res.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		return res
	}
	rep := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Results: []benchResult{
			run("PipelineCrawl", BenchmarkPipelineCrawl),
			run("PipelineMatch", BenchmarkPipelineMatch),
			run("PipelineAnalyze", BenchmarkPipelineAnalyze),
		},
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("benchmark artifact written to %s", out)
}
