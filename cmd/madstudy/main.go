// Command madstudy runs the complete malvertising measurement study —
// ecosystem generation, crawl, oracle classification, analysis — and prints
// the reproduced paper results (Table 1, Figures 1-5, cluster shares, the
// sandbox census), optionally followed by the §5 countermeasure
// evaluations.
//
// With -serve or -checkpoint it instead runs the crash-safe streaming
// service: visits flow through supervised stages, every completed visit is
// journaled, SIGINT/SIGTERM drains gracefully, and a killed run resumed from
// the same checkpoint file lands on byte-identical final statistics.
//
// Usage:
//
//	madstudy [-seed N] [-sites N] [-days N] [-refreshes N] [-workers N]
//	         [-chaos RATE] [-cache] [-graph] [-defenses] [-corpus out.jsonl] [-csv dir]
//	         [-serve] [-checkpoint journal.wal] [-drain-timeout 30s]
//	         [-serve-rate N] [-ops-addr ADDR] [-events-out events.jsonl]
//	         [-metrics-out metrics.prom] [-spans-out trace.json]
//	         [-pprof ADDR] [-cpuprofile cpu.pb.gz] [-memprofile heap.pb.gz]
//
// -ops-addr starts the live operations plane (internal/opsd): /metrics,
// /healthz, /readyz, /statusz, /alerts, /events, and /debug/pprof/ on one
// embedded admin server. The ops plane is observe-only: a run with it on is
// byte-identical to one with it off.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"madave"
	"madave/internal/analysis"
	"madave/internal/journal"
	"madave/internal/memnet"
	"madave/internal/netcap"
	"madave/internal/opsd"
	"madave/internal/stream"
	"madave/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("madstudy: ")

	var (
		seed      = flag.Uint64("seed", 1, "simulation seed (same seed, same study)")
		sites     = flag.Int("sites", 800, "crawl-set sample size (0 = full paper-style set)")
		days      = flag.Int("days", 1, "crawl days (paper: ~90)")
		refreshes = flag.Int("refreshes", 5, "page refreshes per visit (paper: 5)")
		workers   = flag.Int("workers", 8, "crawl and oracle parallelism")
		defenses  = flag.Bool("defenses", false, "also evaluate the §5 countermeasures")
		figures   = flag.Bool("figures", false, "render Figures 1-5 as ASCII charts")
		project   = flag.Bool("project", false, "project Table 1 to the paper's 673,596-ad corpus")
		validate  = flag.Bool("validate", false, "compare the oracle against simulation ground truth")
		corpusOut = flag.String("corpus", "", "write the ad corpus (JSON lines) to this file")
		csvDir    = flag.String("csv", "", "write figure CSVs into this directory")
		mdOut     = flag.String("md", "", "write the full Markdown report to this file")
		traceOut  = flag.String("trace", "", "capture all crawl HTTP traffic and write it (JSON lines) to this file")
		chaos     = flag.Float64("chaos", 0, "injected network fault rate in [0,1] (0 = off); faults are seeded, so the study stays reproducible")
		interpJS  = flag.Bool("minijs-interp", false, "execute page scripts with the tree-walking interpreter instead of the bytecode VM (slower; identical results)")
		graph     = flag.Bool("graph", false, "enable the flow-graph oracle: structural per-page graphs with a fourth classifier component (additive; base stats stay byte-identical)")

		cache        = flag.Bool("cache", false, "memoize honeyclient reports, blacklist verdicts, and AV scans (results stay byte-identical; repeated artefacts classify once)")
		cacheEntries = flag.Int("cache-entries", 0, "per-cache capacity override (0 = per-cache defaults)")

		serve        = flag.Bool("serve", false, "streaming service mode: Zipf-sampled impressions admitted through the priority shedder (overload sheds low-rank sites, counted, never silent)")
		checkpoint   = flag.String("checkpoint", "", "journal file for crash-safe streaming (implies streaming mode); a killed run resumed from the same file yields byte-identical final statistics")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, how long the streaming drain waits for in-flight visits before hard-cancelling")
		impressions  = flag.Int("impressions", 0, "serve mode: impressions to admit before draining (0 = default)")
		serveRate    = flag.Float64("serve-rate", 0, "serve mode: pace the impression source to roughly this many offers per second (0 = unpaced)")

		opsAddr   = flag.String("ops-addr", "", "serve the live operations plane (metrics, health, statusz, alerts, events, pprof) on this address (e.g. 127.0.0.1:9090)")
		eventsOut = flag.String("events-out", "", "also append structured JSONL events to this file as they happen")

		metricsOut = flag.String("metrics-out", "", "write end-of-run metrics to this file (.prom = Prometheus text, else JSON)")
		spansOut   = flag.String("spans-out", "", "record pipeline spans and write them to this file (.jsonl = JSON lines, else Chrome trace_event for chrome://tracing / Perfetto)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()

	// A first SIGINT/SIGTERM cancels the run context: streaming mode drains
	// gracefully, batch mode stops scheduling visits but still prints the
	// end-of-run tables over whatever was collected. A second signal kills
	// the process the usual way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := madave.DefaultConfig()
	cfg.Seed = *seed
	cfg.CrawlSites = *sites
	cfg.Crawl.Days = *days
	cfg.Crawl.Refreshes = *refreshes
	cfg.Crawl.Parallelism = *workers
	cfg.OracleParallelism = *workers
	cfg.MinijsInterp = *interpJS
	cfg.GraphOracle = *graph
	if *chaos > 0 {
		prof := memnet.UniformProfile(*chaos)
		cfg.Chaos = &prof
	}
	if *cache {
		cfg.Cache = madave.CacheConfig{
			Enabled:            true,
			HoneyclientEntries: *cacheEntries,
			BlacklistEntries:   *cacheEntries,
			AVScanEntries:      *cacheEntries,
		}
	}

	tel := telemetry.New(*seed)
	if *spansOut != "" {
		tel.EnableTracing()
	}
	tel.Events = telemetry.NewEventLog(0)
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatal(err)
		}
		tel.Events.SetSink(f)
		defer func() {
			tel.Events.Flush() //nolint:errcheck // best-effort final flush
			f.Close()
		}()
	}
	cfg.Telemetry = tel

	var ops *opsd.Server
	if *opsAddr != "" {
		var err error
		ops, err = opsd.Start(opsd.Config{Addr: *opsAddr, Tel: tel})
		if err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		fmt.Printf("ops plane: serving on http://%s/ (/metrics /healthz /readyz /statusz /alerts /events /debug/pprof/)\n", ops.Addr())
	}

	if *pprofAddr != "" {
		addr, stopPprof, err := telemetry.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopPprof()
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", addr)
	}
	if *cpuProfile != "" || *memProfile != "" {
		finish, err := telemetry.ProfileStudy(*cpuProfile, *memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := finish(); err != nil {
				log.Print(err)
			}
		}()
	}

	start := time.Now()
	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ecosystem: %d sites, %d ad networks, %d campaigns (built in %v)\n",
		len(study.Web.Sites), len(study.Eco.Networks), len(study.Eco.Campaigns),
		time.Since(start).Round(time.Millisecond))

	if *serve || *checkpoint != "" {
		if err := runStream(ctx, study, tel, ops, *serve, *checkpoint, *drainTimeout, *impressions, *serveRate); err != nil {
			log.Fatal(err)
		}
		flushTelemetry(study, tel, *metricsOut, *spansOut)
		return
	}

	crawlStart := time.Now()
	var corp *madave.Corpus
	var stats *madave.CrawlStats
	if *traceOut != "" {
		var trace *netcap.Capture
		corp, stats, trace = study.CrawlTraced()
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Save(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		sum := trace.Summarize()
		fmt.Printf("traffic trace: %d transactions over %d hosts (%d redirects, %d bytes) -> %s\n",
			sum.Transactions, sum.Hosts, sum.Redirects, sum.BytesTotal, *traceOut)
		for _, hs := range sum.TopHosts(5) {
			fmt.Printf("  busiest: %-40s %6d transactions %10d bytes\n",
				hs.Host, hs.Transactions, hs.Bytes)
		}
	} else {
		corp, stats = study.CrawlContext(ctx)
	}
	if ctx.Err() != nil {
		fmt.Println("interrupted — reporting over the partial crawl")
	}
	fmt.Printf("crawl: %d pages, %d ad frames, %d unique ads (%v)\n",
		stats.PagesVisited, stats.AdFrames, corp.Len(),
		time.Since(crawlStart).Round(time.Millisecond))
	if *chaos > 0 {
		fmt.Printf("resilience: %d retries, %d attempt timeouts, %d truncations, %d circuit opens (%d requests shed), %d degraded pages\n",
			stats.Retries, stats.Timeouts, stats.Truncations,
			stats.CircuitOpens, stats.CircuitShortCircuits, stats.DegradedPages)
		fmt.Printf("page errors: %d (%d nxdomain, %d timeout, %d http, %d other)\n",
			stats.PageErrors, stats.NXDomainErrors, stats.TimeoutErrors,
			stats.HTTPErrors, stats.OtherErrors)
	}

	oracleStart := time.Now()
	verdicts := study.ClassifyContext(ctx, corp)
	fmt.Printf("oracle: %d incidents among %d ads — %.2f%% malicious (%v)\n",
		verdicts.MaliciousCount(), verdicts.Scanned, 100*verdicts.MaliciousRate(),
		time.Since(oracleStart).Round(time.Millisecond))
	if verdicts.Degraded > 0 {
		fmt.Printf("oracle: %d verdicts rest on partial (degraded) evidence\n", verdicts.Degraded)
	}
	fmt.Println()

	report := study.Analyze(corp, verdicts, stats)
	fmt.Println(report.RenderText())
	if report.Graph != nil {
		fmt.Println(report.Graph.RenderText())
	}

	conc := madave.Concentrate(report)
	fmt.Printf("Malvertising concentration: Gini %.2f, worst network holds %.1f%%, top 3 hold %.1f%%\n",
		conc.GiniIncidents, 100*conc.TopShare, 100*conc.Top3Share)
	if *days > 1 {
		fmt.Println("\nTimeline (per crawl day)")
		for _, p := range madave.Timeline(corp, verdicts) {
			fmt.Printf("  day %2d: %6d ads, %4d malicious (%.2f%%)\n",
				p.Day, p.Ads, p.Malicious, 100*p.Rate())
		}
	}

	if *project {
		fmt.Println()
		fmt.Print(report.ProjectTo(analysis.PaperCorpusSize).CompareToPaper())
	}
	if *figures {
		fmt.Println()
		fmt.Println(report.RenderFigures())
	}
	if *validate {
		v, err := study.Validate(corp, verdicts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(v.String())
	}

	if *corpusOut != "" {
		f, err := os.Create(*corpusOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := corp.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("corpus written to %s\n", *corpusOut)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		writes := map[string]string{
			"table1.csv":             report.Table1CSV(),
			"figure1_networks.csv":   report.NetworksCSV(),
			"figure3_categories.csv": report.CategoriesCSV(),
			"figure4_tlds.csv":       report.TLDsCSV(),
			"figure5_chains.csv":     report.ChainSeriesCSV(),
			"clusters.csv":           report.ClustersCSV(),
		}
		for name, content := range writes {
			path := filepath.Join(*csvDir, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	results := &madave.Results{Corpus: corp, CrawlStats: stats, Oracle: verdicts, Report: report}
	var cmps []madave.Comparison
	if *defenses {
		fmt.Println("\nCountermeasures (§5)")
		var err error
		cmps, err = madave.EvaluateDefenses(study, results)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range cmps {
			fmt.Println("  " + c.String())
		}
	}

	if *mdOut != "" {
		var v *madave.Validation
		if *validate {
			v, _ = study.Validate(corp, verdicts)
		}
		md := madave.MarkdownReport("Malvertising study report", study, results, v, cmps)
		if err := os.WriteFile(*mdOut, []byte(md), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nMarkdown report written to %s\n", *mdOut)
	}

	checks := madave.PaperChecks(report)
	passed := 0
	for _, c := range checks {
		if c.Pass {
			passed++
		}
	}
	fmt.Printf("\nFidelity vs the paper: %d/%d checks pass\n", passed, len(checks))
	for _, c := range checks {
		if !c.Pass {
			fmt.Printf("  DEVIATION: %s (paper %s, measured %s)\n", c.Claim, c.Paper, c.Measured)
		}
	}

	flushTelemetry(study, tel, *metricsOut, *spansOut)
}

// runStream executes the crash-safe streaming service: a -checkpoint journal
// file makes commits survive process death, -serve switches from the finite
// schedule to a shedding impression stream, and the signal context drains the
// pipeline gracefully.
func runStream(ctx context.Context, study *madave.Study, tel *telemetry.Set, ops *opsd.Server,
	serve bool, checkpointPath string, drainTimeout time.Duration, impressions int, serveRate float64) error {
	var backend journal.Backend
	if checkpointPath != "" {
		fb, err := journal.OpenFile(checkpointPath)
		if err != nil {
			return err
		}
		defer fb.Close()
		backend = fb
	} else {
		fmt.Println("streaming without -checkpoint: journal is in-memory, progress dies with the process")
		backend = journal.NewMem()
	}
	svc, err := stream.NewService(study, stream.ServiceConfig{
		Stream:         stream.Config{DrainTimeout: drainTimeout, Tel: tel},
		Journal:        backend,
		Serve:          serve,
		MaxImpressions: impressions,
		ServeRate:      serveRate,
	})
	if err != nil {
		return err
	}
	if ops != nil {
		ops.AttachService(svc)
	}
	if rec := svc.Recovered(); rec > 0 {
		fmt.Printf("recovered %d committed visits from %s — they will not re-execute\n", rec, checkpointPath)
	}
	fmt.Printf("streaming: Ctrl-C drains in-flight visits (deadline %v); resume from the same journal to finish\n", drainTimeout)

	res, err := svc.Run(ctx)
	if err != nil {
		return err
	}
	sum := res.Summary
	fmt.Printf("stream: %d visits (%d page errors), %d ad frames, %d unique ads, %d malicious\n",
		sum.Visits, sum.PageErrors, sum.AdFrames, sum.UniqueAds, sum.Malicious)
	fmt.Printf("ops: recovered %d, committed %d, aborted %d, checkpoints %d, worker restarts %d\n",
		res.Ops.Recovered, res.Ops.Committed, res.Ops.Aborted, res.Ops.Checkpoints, res.Ops.Restarts)
	if serve {
		st := res.Ops.Shed
		fmt.Printf("admission: offered %d, delivered %d, shed %d (low-priority first, every shed counted)\n",
			st.Offered, st.Delivered, st.Shed)
	}
	if res.Graph.Scanned > 0 {
		fmt.Printf("graph oracle: %d of %d ads flagged (chain max %d, p90 %d)\n",
			res.Graph.Flagged, res.Graph.Scanned, res.Graph.ChainMax, res.Graph.ChainP90)
		fmt.Printf("graph summary: %s\n", res.Graph.JSON())
	}
	fmt.Printf("summary: %s\n", sum.JSON())
	return nil
}

// flushTelemetry prints the latency/cache tables and writes the optional
// metrics and span artifacts; shared by the batch and streaming paths.
func flushTelemetry(study *madave.Study, tel *telemetry.Set, metricsOut, spansOut string) {
	if table := tel.LatencyTable(); table != "" {
		fmt.Println("\nPipeline stage latencies")
		fmt.Print(table)
	}
	if cs := study.CacheStats(); len(cs) > 0 {
		fmt.Println("\nPipeline caches")
		fmt.Printf("  %-12s %10s %10s %9s %10s %10s %8s\n",
			"cache", "hits", "misses", "hit%", "coalesced", "evictions", "size")
		for _, st := range cs {
			fmt.Printf("  %-12s %10d %10d %8.1f%% %10d %10d %8d\n",
				st.Name, st.Hits, st.Misses, 100*st.HitRatio(),
				st.Coalesced, st.Evictions, st.Size)
		}
	}
	if metricsOut != "" {
		if err := writeMetrics(tel, metricsOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics written to %s\n", metricsOut)
	}
	if spansOut != "" {
		if err := writeSpans(tel, spansOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d spans written to %s (%d dropped)\n",
			tel.Tracer.Len(), spansOut, tel.Tracer.Dropped())
	}
}

// writeMetrics dumps the registry: Prometheus text for .prom files, a JSON
// snapshot otherwise.
func writeMetrics(tel *telemetry.Set, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = tel.Registry.WritePrometheus(f)
	} else {
		err = tel.Registry.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSpans dumps the recorded spans: JSON lines for .jsonl files, Chrome
// trace_event (chrome://tracing / Perfetto) otherwise.
func writeSpans(tel *telemetry.Set, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tel.Tracer.WriteJSONL(f)
	} else {
		err = tel.Tracer.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
