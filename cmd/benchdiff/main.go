// Command benchdiff compares two BENCH_pipeline.json artifacts and fails
// (exit 1) when the new run's allocations per op regress beyond a tolerance
// over the old run's. Wall-clock (ns/op) drifts with runner load, so it is
// reported but never gated here; allocation counts are deterministic for a
// fixed workload, which makes them the reliable cross-machine regression
// signal. CI runs this with the committed baseline as "old" and the
// just-measured artifact as "new".
//
// Usage:
//
//	benchdiff [-max-alloc-regress 0.10] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

type benchReport struct {
	Results []benchResult `json:"results"`
}

func load(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]benchResult, len(rep.Results))
	for _, r := range rep.Results {
		m[r.Name] = r
	}
	return m, nil
}

func main() {
	maxRegress := flag.Float64("max-alloc-regress", 0.10,
		"maximum tolerated fractional increase in allocs/op (0.10 = +10%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-alloc-regress 0.10] old.json new.json")
		os.Exit(2)
	}
	oldRes, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	// Walk the old report's benchmarks so a row silently dropped from the
	// new artifact is caught rather than skipped.
	names := make([]string, 0, len(oldRes))
	for _, r := range readOrder(flag.Arg(0)) {
		if _, ok := oldRes[r]; ok {
			names = append(names, r)
		}
	}

	failed := false
	fmt.Printf("%-28s %14s %14s %8s\n", "benchmark", "old allocs/op", "new allocs/op", "delta")
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fmt.Printf("%-28s %14d %14s %8s  MISSING from new artifact\n", name, o.AllocsPerOp, "-", "-")
			failed = true
			continue
		}
		delta := "n/a"
		status := ""
		if o.AllocsPerOp > 0 {
			frac := float64(n.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp)
			delta = fmt.Sprintf("%+.1f%%", frac*100)
			if frac > *maxRegress {
				status = fmt.Sprintf("  FAIL (> +%.0f%%)", *maxRegress*100)
				failed = true
			}
		} else if n.AllocsPerOp > 0 {
			// Old row was alloc-free (or predates alloc columns with a
			// genuinely zero count); any new allocation on a zero baseline
			// is a regression.
			delta = fmt.Sprintf("+%d", n.AllocsPerOp)
			status = "  FAIL (was 0 allocs/op)"
			failed = true
		}
		fmt.Printf("%-28s %14d %14d %8s%s\n", name, o.AllocsPerOp, n.AllocsPerOp, delta, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: allocation regression detected")
		os.Exit(1)
	}
	fmt.Println("benchdiff: no allocation regressions")
}

// readOrder returns benchmark names in the file's original order so the
// diff table reads like the artifact.
func readOrder(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep benchReport
	if json.Unmarshal(data, &rep) != nil {
		return nil
	}
	names := make([]string, 0, len(rep.Results))
	for _, r := range rep.Results {
		names = append(names, r.Name)
	}
	return names
}
