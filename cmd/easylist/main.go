// Command easylist matches URLs against an Adblock-Plus filter list using
// the repository's EasyList engine — the component the crawler uses to tell
// advertisement iframes apart from other content (§3.1).
//
// With -list it reads a filter file; without it, it builds the synthetic
// EasyList of the simulated ad ecosystem for the given seed. URLs come from
// the command line or stdin (one per line).
//
// Usage:
//
//	easylist [-list rules.txt | -seed N] [-type subdocument] [-doc host] url...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"madave/internal/adnet"
	"madave/internal/adserver"
	"madave/internal/easylist"
	"madave/internal/webgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("easylist: ")

	var (
		listFile = flag.String("list", "", "filter list file (ABP syntax); empty = synthetic list")
		seed     = flag.Uint64("seed", 1, "seed for the synthetic list")
		reqType  = flag.String("type", "subdocument", "request type: document|subdocument|script|image|other")
		docHost  = flag.String("doc", "", "host of the requesting document (for $third-party/$domain rules)")
	)
	flag.Parse()

	list, err := buildList(*listFile, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d rules (%d unsupported lines skipped)\n", list.Len(), list.Skipped())

	rt := parseType(*reqType)
	ctx := easylist.NewRequestCtx() // one match context for the whole URL stream
	check := func(url string) {
		blocked, rule := list.MatchCtx(ctx, easylist.Request{URL: url, Type: rt, DocHost: *docHost})
		switch {
		case blocked:
			fmt.Printf("AD      %s  (rule: %s)\n", url, rule.Raw)
		case rule != nil:
			fmt.Printf("ALLOW   %s  (exception: %s)\n", url, rule.Raw)
		default:
			fmt.Printf("CONTENT %s\n", url)
		}
	}

	if flag.NArg() > 0 {
		for _, url := range flag.Args() {
			check(url)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			check(line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func buildList(path string, seed uint64) (*easylist.List, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return easylist.Parse(f)
	}
	webCfg := webgen.DefaultConfig()
	webCfg.Seed = seed
	web, err := webgen.Generate(webCfg)
	if err != nil {
		return nil, err
	}
	adsCfg := adnet.DefaultConfig()
	adsCfg.Seed = seed
	eco, err := adnet.Generate(adsCfg)
	if err != nil {
		return nil, err
	}
	return easylist.ParseString(adserver.New(eco, web, seed).BuildEasyList())
}

func parseType(s string) easylist.ResourceType {
	switch s {
	case "document":
		return easylist.TypeDocument
	case "subdocument":
		return easylist.TypeSubdocument
	case "script":
		return easylist.TypeScript
	case "image":
		return easylist.TypeImage
	default:
		return easylist.TypeOther
	}
}
