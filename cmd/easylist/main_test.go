package main

import (
	"os"
	"path/filepath"
	"testing"

	"madave/internal/easylist"
)

func TestParseType(t *testing.T) {
	cases := map[string]easylist.ResourceType{
		"document":    easylist.TypeDocument,
		"subdocument": easylist.TypeSubdocument,
		"script":      easylist.TypeScript,
		"image":       easylist.TypeImage,
		"other":       easylist.TypeOther,
		"bogus":       easylist.TypeOther,
	}
	for in, want := range cases {
		if got := parseType(in); got != want {
			t.Errorf("parseType(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestBuildListFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	if err := os.WriteFile(path, []byte("||ads.example.com^\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	list, err := buildList(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !list.MatchURL("http://ads.example.com/x") {
		t.Fatal("file rule not applied")
	}
	if _, err := buildList(filepath.Join(t.TempDir(), "missing.txt"), 1); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBuildListSynthetic(t *testing.T) {
	list, err := buildList("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if list.Len() == 0 {
		t.Fatal("synthetic list empty")
	}
	// The widget CDN exception must be present.
	if list.MatchURL("http://cdn.widgetworks.com/embed?site=x") {
		t.Fatal("widget should be exempt")
	}
}
