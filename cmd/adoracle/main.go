// Command adoracle runs the classification phase (§3.2) over a corpus file
// produced by adcrawl: it rebuilds the same simulated universe (the seed
// must match the crawl), re-executes every advertisement in the honeyclient,
// checks domains against the blacklists, scans downloads with the AV
// engines, and prints the resulting Table 1 and analysis.
//
// Usage:
//
//	adoracle -i corpus.jsonl [-seed N] [-workers N] [-cache]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"madave"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adoracle: ")

	var (
		in      = flag.String("i", "corpus.jsonl", "input corpus file (JSON lines)")
		seed    = flag.Uint64("seed", 1, "simulation seed (must match the crawl)")
		workers = flag.Int("workers", 8, "oracle parallelism")
		cache   = flag.Bool("cache", false, "memoize honeyclient reports, blacklist verdicts, and AV scans (verdicts stay byte-identical)")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	corp, err := madave.LoadCorpus(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d advertisements from %s\n", corp.Len(), *in)

	cfg := madave.DefaultConfig()
	cfg.Seed = *seed
	cfg.OracleParallelism = *workers
	cfg.Cache.Enabled = *cache
	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	verdicts := study.Classify(corp)
	fmt.Printf("%d incidents among %d ads — %.2f%% malicious\n\n",
		verdicts.MaliciousCount(), verdicts.Scanned, 100*verdicts.MaliciousRate())

	report := study.Analyze(corp, verdicts, nil)
	fmt.Println(report.RenderText())

	if cs := study.CacheStats(); len(cs) > 0 {
		fmt.Println("\nPipeline caches")
		for _, st := range cs {
			fmt.Printf("  %-12s %d hits / %d lookups (%.1f%% hit, %d coalesced, %d evictions)\n",
				st.Name, st.Hits, st.Lookups(), 100*st.HitRatio(), st.Coalesced, st.Evictions)
		}
	}
}
