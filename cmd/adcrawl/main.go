// Command adcrawl runs only the data-collection phase (§3.1): it builds the
// simulated web and ad ecosystem, crawls the paper-style crawl set, and
// writes the deduplicated advertisement corpus as JSON lines, ready for
// adoracle.
//
// With -serve or -checkpoint it runs the crash-safe streaming service
// instead: visits commit to a journal as they finish, SIGINT/SIGTERM drains
// gracefully, and a killed run resumes from the same checkpoint file. The
// streaming service journals per-visit records, not full advertisements, so
// -o is batch-mode only.
//
// Usage:
//
//	adcrawl -o corpus.jsonl [-seed N] [-sites N] [-days N] [-refreshes N]
//	        [-chaos RATE] [-cache] [-graph] [-metrics-out metrics.prom]
//	        [-serve] [-checkpoint journal.wal] [-drain-timeout 30s]
//	        [-ops-addr ADDR] [-events-out events.jsonl]
//	        [-spans-out trace.json] [-pprof ADDR]
//
// -ops-addr starts the live operations plane (internal/opsd) on one embedded
// admin server; it is observe-only, so a run with it on is byte-identical to
// one with it off.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"madave"
	"madave/internal/journal"
	"madave/internal/memnet"
	"madave/internal/opsd"
	"madave/internal/stream"
	"madave/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adcrawl: ")

	var (
		out       = flag.String("o", "corpus.jsonl", "output corpus file (JSON lines)")
		seed      = flag.Uint64("seed", 1, "simulation seed (adoracle must use the same)")
		sites     = flag.Int("sites", 800, "crawl-set sample size (0 = full set)")
		days      = flag.Int("days", 1, "crawl days")
		refreshes = flag.Int("refreshes", 5, "page refreshes per visit")
		workers   = flag.Int("workers", 8, "crawl parallelism")
		chaos     = flag.Float64("chaos", 0, "injected network fault rate in [0,1] (0 = off); faults are seeded, so crawls stay reproducible")
		interpJS  = flag.Bool("minijs-interp", false, "execute page scripts with the tree-walking interpreter instead of the bytecode VM (slower; identical results)")
		cache     = flag.Bool("cache", false, "enable the oracle-side memoization caches in the assembled study (matches madstudy/adoracle -cache)")
		graph     = flag.Bool("graph", false, "enable the flow-graph oracle in the assembled study (streaming mode journals its per-ad verdicts; base stats stay byte-identical)")

		serveMode    = flag.Bool("serve", false, "streaming service mode: Zipf-sampled impressions through the priority shedder instead of the finite schedule")
		checkpoint   = flag.String("checkpoint", "", "journal file for crash-safe streaming (implies streaming mode); resuming from it skips already-committed visits")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, how long the streaming drain waits for in-flight visits before hard-cancelling")

		opsAddr   = flag.String("ops-addr", "", "serve the live operations plane (metrics, health, statusz, alerts, events, pprof) on this address (e.g. 127.0.0.1:9090)")
		eventsOut = flag.String("events-out", "", "also append structured JSONL events to this file as they happen")

		metricsOut = flag.String("metrics-out", "", "write end-of-run metrics to this file (.prom = Prometheus text, else JSON)")
		spansOut   = flag.String("spans-out", "", "record pipeline spans and write them to this file (.jsonl = JSON lines, else Chrome trace_event)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// First SIGINT/SIGTERM cancels the run: streaming mode drains gracefully,
	// batch mode stops scheduling visits but still writes the partial corpus.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := madave.DefaultConfig()
	cfg.Seed = *seed
	cfg.CrawlSites = *sites
	cfg.Crawl.Days = *days
	cfg.Crawl.Refreshes = *refreshes
	cfg.Crawl.Parallelism = *workers
	cfg.MinijsInterp = *interpJS
	if *chaos > 0 {
		prof := memnet.UniformProfile(*chaos)
		cfg.Chaos = &prof
	}
	cfg.Cache.Enabled = *cache
	cfg.GraphOracle = *graph

	tel := telemetry.New(*seed)
	if *spansOut != "" {
		tel.EnableTracing()
	}
	tel.Events = telemetry.NewEventLog(0)
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatal(err)
		}
		tel.Events.SetSink(f)
		defer func() {
			tel.Events.Flush() //nolint:errcheck // best-effort final flush
			f.Close()
		}()
	}
	cfg.Telemetry = tel

	var ops *opsd.Server
	if *opsAddr != "" {
		var err error
		ops, err = opsd.Start(opsd.Config{Addr: *opsAddr, Tel: tel})
		if err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		fmt.Printf("ops plane: serving on http://%s/ (/metrics /healthz /readyz /statusz /alerts /events /debug/pprof/)\n", ops.Addr())
	}

	if *pprofAddr != "" {
		addr, stopPprof, err := telemetry.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopPprof()
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", addr)
	}

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *serveMode || *checkpoint != "" {
		if err := runStream(ctx, study, tel, ops, *serveMode, *checkpoint, *drainTimeout); err != nil {
			log.Fatal(err)
		}
		return
	}

	corp, stats := study.CrawlContext(ctx)
	if ctx.Err() != nil {
		fmt.Println("interrupted — writing the partial corpus")
	}
	fmt.Printf("visited %d pages; %d ad frames; %d unique ads (%d duplicates)\n",
		stats.PagesVisited, stats.AdFrames, corp.Len(), stats.Duplicates)
	fmt.Printf("sandbox census: %d/%d ad iframes sandboxed\n",
		stats.SandboxedAds, stats.AdFrames)
	if *chaos > 0 {
		fmt.Printf("resilience: %d retries, %d attempt timeouts, %d truncations, %d circuit opens (%d requests shed), %d degraded pages\n",
			stats.Retries, stats.Timeouts, stats.Truncations,
			stats.CircuitOpens, stats.CircuitShortCircuits, stats.DegradedPages)
		fmt.Printf("page errors: %d (%d nxdomain, %d timeout, %d http, %d other)\n",
			stats.PageErrors, stats.NXDomainErrors, stats.TimeoutErrors,
			stats.HTTPErrors, stats.OtherErrors)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := corp.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus written to %s\n", *out)

	if table := tel.LatencyTable(); table != "" {
		fmt.Println("\nPipeline stage latencies")
		fmt.Print(table)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, func(w *os.File) error {
			if strings.HasSuffix(*metricsOut, ".prom") {
				return tel.Registry.WritePrometheus(w)
			}
			return tel.Registry.WriteJSON(w)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *spansOut != "" {
		if err := writeFile(*spansOut, func(w *os.File) error {
			if strings.HasSuffix(*spansOut, ".jsonl") {
				return tel.Tracer.WriteJSONL(w)
			}
			return tel.Tracer.WriteChromeTrace(w)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d spans written to %s\n", tel.Tracer.Len(), *spansOut)
	}
}

// runStream executes the crash-safe streaming crawl service and prints its
// deterministic summary. Per-visit records commit to the journal (no corpus
// file in this mode); a killed run resumed from the same -checkpoint file
// finishes with byte-identical statistics.
func runStream(ctx context.Context, study *madave.Study, tel *telemetry.Set, ops *opsd.Server,
	serveMode bool, checkpointPath string, drainTimeout time.Duration) error {
	var backend journal.Backend
	if checkpointPath != "" {
		fb, err := journal.OpenFile(checkpointPath)
		if err != nil {
			return err
		}
		defer fb.Close()
		backend = fb
	} else {
		fmt.Println("streaming without -checkpoint: journal is in-memory, progress dies with the process")
		backend = journal.NewMem()
	}
	svc, err := stream.NewService(study, stream.ServiceConfig{
		Stream:  stream.Config{DrainTimeout: drainTimeout, Tel: tel},
		Journal: backend,
		Serve:   serveMode,
	})
	if err != nil {
		return err
	}
	if ops != nil {
		ops.AttachService(svc)
	}
	if rec := svc.Recovered(); rec > 0 {
		fmt.Printf("recovered %d committed visits from %s — they will not re-execute\n", rec, checkpointPath)
	}
	res, err := svc.Run(ctx)
	if err != nil {
		return err
	}
	sum := res.Summary
	fmt.Printf("stream: %d visits (%d page errors), %d ad frames, %d unique ads, %d malicious\n",
		sum.Visits, sum.PageErrors, sum.AdFrames, sum.UniqueAds, sum.Malicious)
	fmt.Printf("ops: recovered %d, committed %d, aborted %d, checkpoints %d, worker restarts %d\n",
		res.Ops.Recovered, res.Ops.Committed, res.Ops.Aborted, res.Ops.Checkpoints, res.Ops.Restarts)
	if serveMode {
		st := res.Ops.Shed
		fmt.Printf("admission: offered %d, delivered %d, shed %d\n", st.Offered, st.Delivered, st.Shed)
	}
	if res.Graph.Scanned > 0 {
		fmt.Printf("graph oracle: %d of %d ads flagged (chain max %d, p90 %d)\n",
			res.Graph.Flagged, res.Graph.Scanned, res.Graph.ChainMax, res.Graph.ChainP90)
		fmt.Printf("graph summary: %s\n", res.Graph.JSON())
	}
	fmt.Printf("summary: %s\n", sum.JSON())
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
