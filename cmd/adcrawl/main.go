// Command adcrawl runs only the data-collection phase (§3.1): it builds the
// simulated web and ad ecosystem, crawls the paper-style crawl set, and
// writes the deduplicated advertisement corpus as JSON lines, ready for
// adoracle.
//
// Usage:
//
//	adcrawl -o corpus.jsonl [-seed N] [-sites N] [-days N] [-refreshes N]
//	        [-chaos RATE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"madave"
	"madave/internal/memnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adcrawl: ")

	var (
		out       = flag.String("o", "corpus.jsonl", "output corpus file (JSON lines)")
		seed      = flag.Uint64("seed", 1, "simulation seed (adoracle must use the same)")
		sites     = flag.Int("sites", 800, "crawl-set sample size (0 = full set)")
		days      = flag.Int("days", 1, "crawl days")
		refreshes = flag.Int("refreshes", 5, "page refreshes per visit")
		workers   = flag.Int("workers", 8, "crawl parallelism")
		chaos     = flag.Float64("chaos", 0, "injected network fault rate in [0,1] (0 = off); faults are seeded, so crawls stay reproducible")
	)
	flag.Parse()

	cfg := madave.DefaultConfig()
	cfg.Seed = *seed
	cfg.CrawlSites = *sites
	cfg.Crawl.Days = *days
	cfg.Crawl.Refreshes = *refreshes
	cfg.Crawl.Parallelism = *workers
	if *chaos > 0 {
		prof := memnet.UniformProfile(*chaos)
		cfg.Chaos = &prof
	}

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	corp, stats := study.Crawl()
	fmt.Printf("visited %d pages; %d ad frames; %d unique ads (%d duplicates)\n",
		stats.PagesVisited, stats.AdFrames, corp.Len(), stats.Duplicates)
	fmt.Printf("sandbox census: %d/%d ad iframes sandboxed\n",
		stats.SandboxedAds, stats.AdFrames)
	if *chaos > 0 {
		fmt.Printf("resilience: %d retries, %d attempt timeouts, %d truncations, %d circuit opens (%d requests shed), %d degraded pages\n",
			stats.Retries, stats.Timeouts, stats.Truncations,
			stats.CircuitOpens, stats.CircuitShortCircuits, stats.DegradedPages)
		fmt.Printf("page errors: %d (%d nxdomain, %d timeout, %d http, %d other)\n",
			stats.PageErrors, stats.NXDomainErrors, stats.TimeoutErrors,
			stats.HTTPErrors, stats.OtherErrors)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := corp.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus written to %s\n", *out)
}
