package madave

// Pool hygiene: the zero-allocation work (DESIGN.md §16) keeps hot-path
// scratch in sync.Pools and reusable per-context buffers — the htmlparse
// parse-state pool (tokenizer attribute scratch + node/attr arenas), the
// minijs VM machine pool, and the easylist RequestCtx case-fold scratch.
// The failure mode of pooled scratch is not a crash but silent cross-talk:
// a buffer released with stale state leaks one request's bytes into the
// next, and only under concurrency. These tests hammer every pooled site
// from many goroutines and require the results to be byte-identical to a
// serial reference pass over the same inputs. Run under -race by the CI
// test step, they turn "pool reuse corrupted a result" into a hard diff
// and any cross-goroutine scratch sharing into a race report.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"madave/internal/easylist"
	"madave/internal/fuzzutil"
	"madave/internal/htmlparse"
	"madave/internal/minijs"
)

const (
	poolHammerGoroutines = 8
	poolHammerRounds     = 25 // each goroutine replays the whole corpus this many times
)

// adversarialHTML are hand-built documents that stress exactly the state a
// pooled parse must reset: attribute scratch growth then reuse, arena chunk
// boundaries (8/16/32 nodes), raw-text modes, and malformed markup.
func adversarialHTML() []string {
	wideAttrs := "<div"
	for i := 0; i < 40; i++ {
		wideAttrs += fmt.Sprintf(" data-a%d=%q", i, strings.Repeat("v", i))
	}
	wideAttrs += ">wide</div>"
	deep := strings.Repeat("<div>", 70) + "x" + strings.Repeat("</div>", 70)
	docs := []string{
		wideAttrs,     // grows the attr scratch far beyond its default
		"<p>tiny</p>", // immediately reuses the grown scratch on a tiny doc
		deep,          // crosses every node-arena chunk boundary
		"<script>var a = \"</scripty>\";</script><p>x</p>", // raw-text close-tag handling
		"<!-->rest<div>text</div>",                         // short-comment bug seed
		"<iframe src=http://ads.example.com/slot1>",
		"<em <" + strings.Repeat("&", 30),
		"",
	}
	return append(docs, fuzzutil.Pages(0x9001, 16)...)
}

// parseDigest reduces one parse to a comparable byte string: the rendered
// tree plus a node count. Any pooled-state leak shows up as a diff.
func parseDigest(src string) string {
	doc := htmlparse.Parse(src)
	n := 0
	var walk func(*htmlparse.Node)
	walk = func(nd *htmlparse.Node) {
		n++
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(doc)
	return fmt.Sprintf("nodes=%d render=%s", n, doc.Render())
}

// hammer replays fn over the corpus serially to build a golden digest per
// input, then replays the identical corpus from poolHammerGoroutines
// goroutines and requires byte equality with the golden on every iteration.
func hammer(t *testing.T, n int, fn func(i int) string) {
	t.Helper()
	golden := make([]string, n)
	for i := range golden {
		golden[i] = fn(i)
	}
	var wg sync.WaitGroup
	errs := make(chan string, poolHammerGoroutines)
	for g := 0; g < poolHammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < poolHammerRounds; round++ {
				// Stagger start offsets so goroutines collide on different
				// inputs at the same instant.
				for k := 0; k < n; k++ {
					i := (k + g*3 + round) % n
					if got := fn(i); got != golden[i] {
						select {
						case errs <- fmt.Sprintf("goroutine %d round %d input %d:\n got  %q\n want %q", g, round, i, got, golden[i]):
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestPoolHygieneHTMLParse hammers the htmlparse parse-state pool (the
// pooled tokenizer, its attribute scratch, and the node/attr arenas).
func TestPoolHygieneHTMLParse(t *testing.T) {
	docs := adversarialHTML()
	hammer(t, len(docs), func(i int) string { return parseDigest(docs[i]) })
}

// TestPoolHygieneMinijsVM hammers the minijs machine pool: programs are
// compiled once and the shared bytecode is executed concurrently on pooled
// machines, exactly how the crawler's parallel browsers share the code
// cache. Each execution must produce the serial result byte for byte.
func TestPoolHygieneMinijsVM(t *testing.T) {
	srcs := append(fuzzutil.Scripts(0x9002, 16),
		// Stress the VM scratch directly: string building (scratch byte
		// buffers), array growth (object arena chunks), eval re-entry.
		`var s=""; for (var i=0;i<50;i++){ s += "x"+i; } s;`,
		`var a=[]; for (var i=0;i<100;i++){ a.push(i*i); } a.join(",");`,
		`eval("1+2") + eval("'a'+'b'");`,
	)
	progs := make([]*minijs.Program, 0, len(srcs))
	for _, src := range srcs {
		prog, errsyn := minijs.ParseTolerant(src)
		if len(errsyn) > 0 {
			continue
		}
		if err := minijs.CompileProgram(context.Background(), prog); err != nil {
			continue
		}
		progs = append(progs, prog)
	}
	if len(progs) < 10 {
		t.Fatalf("only %d runnable programs; corpus too small to exercise the pool", len(progs))
	}
	run := func(i int) string {
		in := minijs.New()
		in.UseVM = true
		v, err := in.RunProgram(progs[i])
		return fmt.Sprintf("v=%s err=%v", minijs.ToString(v), err)
	}
	hammer(t, len(progs), run)
}

// TestPoolHygieneEasylistCtx hammers the easylist RequestCtx fold scratch:
// one shared List, per-goroutine contexts reused across requests whose
// URLs mix cases and lengths so the fold buffer constantly grows and
// shrinks. MatchCtx decisions must match the serial reference.
func TestPoolHygieneEasylistCtx(t *testing.T) {
	list, err := easylist.ParseString(strings.Join([]string{
		"||ads.example.com^",
		"||TRACKER.example.net^$third-party",
		"/banner/*/img^",
		"|http://popup.",
		"@@||ads.example.com/whitelisted^$subdocument",
		"bad*word$script,domain=pub.example|~safe.pub.example",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []easylist.Request{
		{URL: "http://ads.example.com/slot1", Type: easylist.TypeSubdocument, DocHost: "pub.example"},
		{URL: "http://ADS.EXAMPLE.COM/SLOT2?" + strings.Repeat("UPPER=1&", 30), Type: easylist.TypeSubdocument, DocHost: "pub.example"},
		{URL: "http://tracker.example.net/px.gif", Type: easylist.TypeImage, DocHost: "pub.example"},
		{URL: "http://tracker.example.net/px.gif", Type: easylist.TypeImage, DocHost: "tracker.example.net"},
		{URL: "http://cdn.example.org/banner/2014/img.png", Type: easylist.TypeImage, DocHost: "pub.example"},
		{URL: "http://popup.example.biz/", Type: easylist.TypeDocument, DocHost: "pub.example"},
		{URL: "http://ads.example.com/whitelisted/creative", Type: easylist.TypeSubdocument, DocHost: "pub.example"},
		{URL: "http://static.pub.example/js/BADWORD.js", Type: easylist.TypeScript, DocHost: "pub.example"},
		{URL: "http://static.pub.example/js/badword.js", Type: easylist.TypeScript, DocHost: "safe.pub.example"},
		{URL: "http://benign.example.org/article?id=42", Type: easylist.TypeDocument, DocHost: "pub.example"},
	}
	digest := func(c *easylist.RequestCtx, i int) string {
		blocked, rule := list.MatchCtx(c, reqs[i])
		raw := ""
		if rule != nil {
			raw = rule.Raw
		}
		return fmt.Sprintf("blocked=%v rule=%q", blocked, raw)
	}

	// Serial golden with a single reused context — scratch reuse across
	// requests is part of what is being verified.
	serialCtx := easylist.NewRequestCtx()
	golden := make([]string, len(reqs))
	for i := range reqs {
		golden[i] = digest(serialCtx, i)
	}

	var wg sync.WaitGroup
	for g := 0; g < poolHammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := easylist.NewRequestCtx()
			for round := 0; round < poolHammerRounds; round++ {
				for k := range reqs {
					i := (k + g*3 + round) % len(reqs)
					if got := digest(c, i); got != golden[i] {
						t.Errorf("goroutine %d round %d req %d: got %q want %q", g, round, i, got, golden[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
