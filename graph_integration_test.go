package madave

import (
	"strings"
	"sync"
	"testing"

	"madave/internal/analysis"
	"madave/internal/netcap"
)

var (
	graphOnce  sync.Once
	graphTrace *netcap.Capture
)

// TestGraphFromRealCrawl mines the graph out of an actual traced crawl: the
// arbitration hubs must be ad networks, and publishers must reach creative
// hosts through them.
func TestGraphFromRealCrawl(t *testing.T) {
	graphOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Seed = 71
		cfg.CrawlSites = 150
		cfg.Crawl.Refreshes = 2
		s, err := NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		_, _, graphTrace = s.CrawlTraced()
	})
	g := analysis.BuildHostGraph(graphTrace.All())
	if g.NumHosts() < 100 || g.NumEdges() < 100 {
		t.Fatalf("graph too small: %d hosts, %d edges", g.NumHosts(), g.NumEdges())
	}
	hubs := g.Hubs()
	adHubs := 0
	for i, h := range hubs {
		if i >= 10 {
			break
		}
		if strings.HasPrefix(h.Host, "adserv.") {
			adHubs++
		}
	}
	if adHubs < 5 {
		t.Fatalf("top hubs are not ad networks: %+v", hubs[:10])
	}
	out := g.RenderTop(5)
	if !strings.Contains(out, "host graph:") || !strings.Contains(out, "adserv.") {
		t.Fatalf("render:\n%s", out)
	}
}
