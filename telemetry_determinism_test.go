package madave

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"madave/internal/telemetry"
)

// telemetryStudyConfig is a small study — big enough to exercise every
// pipeline stage, small enough to run twice in a few seconds.
func telemetryStudyConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.CrawlSites = 40
	cfg.Crawl.Days = 1
	cfg.Crawl.Refreshes = 2
	cfg.Crawl.Parallelism = 4
	cfg.OracleParallelism = 4
	return cfg
}

// telemetryRun executes crawl + classification with the given telemetry set
// (nil = uninstrumented) and returns the stats string and the sorted corpus
// hash digest — the same same-seed fingerprint the chaos soak compares.
func telemetryRun(t *testing.T, seed uint64, tel *telemetry.Set) (string, string) {
	t.Helper()
	cfg := telemetryStudyConfig(seed)
	cfg.Telemetry = tel
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corp, st := s.Crawl()
	res := s.Classify(corp)
	hashes := make([]string, 0, corp.Len())
	for _, ad := range corp.All() {
		hashes = append(hashes, ad.Hash)
	}
	sort.Strings(hashes)
	return fmt.Sprintf("%+v|scanned=%d|malicious=%d", *st, res.Scanned, res.MaliciousCount()),
		strings.Join(hashes, "\n")
}

// TestTelemetryDeterminism is the acceptance gate for the telemetry layer's
// core contract: instrumentation is strictly observational. A study with
// full telemetry (metrics + span tracing) must produce byte-identical crawl
// statistics, oracle counts, and corpus versus the same seed with telemetry
// disabled.
func TestTelemetryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry determinism skipped in -short mode")
	}
	const seed = 4242

	tel := telemetry.New(seed)
	tel.EnableTracing()
	sOn, hOn := telemetryRun(t, seed, tel)
	sOff, hOff := telemetryRun(t, seed, nil)

	if sOn != sOff {
		t.Fatalf("stats diverged with telemetry on vs off:\n on: %s\noff: %s", sOn, sOff)
	}
	if hOn != hOff {
		t.Fatal("corpus diverged with telemetry on vs off")
	}

	// The instrumented run must actually have recorded the whole pipeline:
	// every stage appears both in the metrics registry and in the span tree.
	recorded := map[string]bool{}
	for _, sp := range tel.Tracer.Spans() {
		recorded[sp.Stage] = true
	}
	for _, stage := range telemetry.Stages() {
		if !recorded[stage] {
			t.Errorf("no spans recorded for stage %s", stage)
		}
		if h := tel.StageHist(stage); h.Count() == 0 {
			t.Errorf("no latency samples for stage %s", stage)
		}
	}

	// The trace must export as valid Chrome trace_event JSON covering every
	// stage (the file chrome://tracing / Perfetto loads).
	var buf bytes.Buffer
	if err := tel.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != tel.Tracer.Len() {
		t.Fatalf("trace has %d events, tracer holds %d spans",
			len(trace.TraceEvents), tel.Tracer.Len())
	}
	traced := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		traced[ev.Name] = true
	}
	for _, stage := range telemetry.Stages() {
		if !traced[stage] {
			t.Errorf("chrome trace missing stage %s", stage)
		}
	}

	// Span identity is deterministic: a second same-seed instrumented run
	// yields the same span IDs for the same work units.
	tel2 := telemetry.New(seed)
	tel2.EnableTracing()
	telemetryRun(t, seed, tel2)
	ids := func(tr *telemetry.Tracer) string {
		spans := tr.Spans()
		keys := make([]string, 0, len(spans))
		for _, sp := range spans {
			keys = append(keys, fmt.Sprintf("%016x|%016x|%s|%s", sp.ID, sp.ParentID, sp.Stage, sp.Key))
		}
		sort.Strings(keys)
		return strings.Join(keys, "\n")
	}
	if ids(tel.Tracer) != ids(tel2.Tracer) {
		t.Fatal("span identities diverged across same-seed runs")
	}

	// And the latency table renders with every stage present.
	table := tel.LatencyTable()
	for _, stage := range telemetry.Stages() {
		if !strings.Contains(table, stage) {
			t.Errorf("latency table missing stage %s:\n%s", stage, table)
		}
	}
}
